package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"mtask/internal/core"
	"mtask/internal/graph"
	"mtask/internal/obs"
)

// WithWavefront switches ExecuteCtx / ExecuteHierarchicalCtx from
// layer-synchronous execution to dependence-driven (wavefront) execution.
//
// The layered executor joins every group of a layer before any task of the
// next layer may start, so one slow group idles all P cores even when
// successor tasks' inputs are complete and their ranks are free. The layer
// barrier is a scheduling artifact, not a data dependence: the wavefront
// dispatcher launches a task as soon as (a) all of its predecessors in the
// scheduled graph have completed and (b) every symbolic rank of its
// group's interval has been released by its prior-layer occupant (the
// precomputed core.PrecedenceOf metadata encodes both conditions as one
// counter per task). Results are bitwise identical to the layered
// executor: the same task bodies run on the same group intervals with the
// same group collectives; only the launch times change.
//
// Per-task fault handling is unchanged — retries with backoff, panic
// isolation, per-attempt timeouts and abort poisoning all run through the
// same attempt loop as the layered mode. Two differences follow from the
// missing layer scope:
//
//   - TaskCtx.Global is rejected: without a global layer join there is no
//     epoch at which all P cores are in the same layer, so any global
//     collective would deadlock or mix layers. Bodies touching Global fail
//     with an error matching ErrGlobalInWavefront (no retries).
//   - fault.Policy.LayerTimeout is ignored: there is no per-layer scope to
//     attach the deadline to. TaskTimeout still applies per attempt.
//
// Degrade-and-replan keeps its checkpoint semantics: on an exhausted
// failure the dispatcher stops launching, drains the in-flight frontier,
// and reports the completed-layer prefix as the resume point — exactly the
// last completed layer barrier of the layered mode, so core.SameLayering
// replans resume identically. Bodies must be idempotent (as in layered
// mode): a task past the checkpoint may have completed during the drain
// and will run again after the replan.
func WithWavefront() ExecOption {
	return func(c *execConfig) { c.wavefront = true }
}

// ErrGlobalInWavefront is matched (via errors.Is) by the failure of any
// task body that touches TaskCtx.Global under the wavefront dispatcher.
var ErrGlobalInWavefront = errors.New("runtime: TaskCtx.Global is not available in wavefront mode (no layer-synchronous epoch); use WithWavefront only with group-collective bodies")

// runWavefrontPass executes every layer from `from` on with the
// dependence-driven dispatcher: one coordinator goroutine per launched
// task, a completion event decrements the dependence counters of the
// task's successors, and a task whose counter reaches zero launches
// immediately — no global layer join. Per-rank occupancy chains guarantee
// at most one in-flight task per symbolic rank, so at most P rank
// goroutines run at any moment, as in the layered mode.
//
// The returned `done` is the completed-layer prefix (every task of layers
// [0, done) has completed): the checkpoint a degrade-and-replan resumes
// from. On failure the dispatcher stops launching, drains the in-flight
// frontier (completions during the drain still advance the checkpoint),
// and reports the distinct symbolic cores of retry-exhausted groups as
// failedCores.
func runWavefrontPass(ctx context.Context, w *World, sched *core.Schedule, from int,
	body func(t *graph.Task) TaskFunc, cfg *execConfig, rep *Report) (done int, err error, failedCores int) {

	prec, perr := core.PrecedenceOf(sched)
	if perr != nil {
		return from, fmt.Errorf("runtime: wavefront: %w", perr), 0
	}

	// The global communicator is born poisoned: the first collective on it
	// panics with an *AbortError whose cause is ErrGlobalInWavefront, which
	// the attempt loop converts into a fail-fast typed error. Stats are nil
	// so the doomed call is not counted as a real collective.
	global := newLazyGlobal(Global, identityRanks(sched.P), nil, nil)
	global.abort(ErrGlobalInWavefront)

	type result struct {
		id        graph.TaskID
		err       error
		exhausted bool
	}
	results := make(chan result)

	// Seed the dependence counters. Layers before `from` are the completed
	// checkpoint of a previous pass (or replan): their tasks do not run
	// again and their outgoing dependences count as satisfied.
	remaining := make([]int, len(prec.Tasks))
	layerLeft := make([]int, len(sched.Layers))
	var ready []graph.TaskID
	for _, id := range prec.Scheduled {
		td := prec.Tasks[id]
		if td.Layer < from {
			continue
		}
		layerLeft[td.Layer]++
		n := 0
		for _, d := range td.Deps {
			if prec.Tasks[d].Layer >= from {
				n++
			}
		}
		remaining[id] = n
		if n == 0 {
			ready = append(ready, id)
		}
	}

	launch := func(id graph.TaskID) {
		td := prec.Tasks[id]
		go func() {
			e, ex := runScheduledTask(ctx, w, sched, td.Layer, td.Group, td.Lo, td.Hi, id, global, body, cfg, rep, nil)
			results <- result{id: id, err: e, exhausted: ex}
		}()
	}

	done = from
	for done < len(layerLeft) && layerLeft[done] == 0 {
		rep.layerDone()
		cfg.rec.Instant("layer-done", "exec", obs.ControlRank, cfg.rec.Now())
		done++
	}

	var errs []error
	lostRanks := make([]uint64, (sched.P+63)/64) // bitset: no per-failure map
	failing := false
	inflight := 0
	for {
		if !failing {
			for _, id := range ready {
				launch(id)
				inflight++
			}
		}
		ready = ready[:0]
		if inflight == 0 {
			break
		}
		r := <-results
		inflight--
		td := prec.Tasks[r.id]
		if r.err != nil {
			failing = true
			errs = append(errs, fmt.Errorf("layer %d group %d: %w", td.Layer, td.Group, r.err))
			if r.exhausted {
				// The union of exhausted groups' rank intervals: concurrent
				// failures in different layers may claim overlapping ranks,
				// and a symbolic core is only lost once.
				for rank := td.Lo; rank < td.Hi; rank++ {
					lostRanks[rank>>6] |= 1 << (uint(rank) & 63)
				}
			}
			continue
		}
		layerLeft[td.Layer]--
		for done < len(layerLeft) && layerLeft[done] == 0 {
			rep.layerDone()
			cfg.rec.Instant("layer-done", "exec", obs.ControlRank, cfg.rec.Now())
			done++
		}
		for _, su := range td.Succs {
			remaining[su]--
			if remaining[su] == 0 {
				ready = append(ready, su)
			}
		}
	}

	if len(errs) == 0 && done != len(sched.Layers) {
		// Cannot happen for a valid schedule (PrecedenceOf proves the
		// dependences acyclic), but a stall must be an error, not a silent
		// partial result. Naming the first blocked task makes it
		// diagnosable.
		for _, id := range prec.Scheduled {
			td := prec.Tasks[id]
			if td.Layer >= from && remaining[id] > 0 {
				return done, fmt.Errorf("runtime: wavefront stalled after layer %d of %d at task %d (layer %d group %d, %d dependences outstanding) (internal error)",
					done, len(sched.Layers), id, td.Layer, td.Group, remaining[id]), 0
			}
		}
		return done, fmt.Errorf("runtime: wavefront stalled after layer %d of %d (internal error)", done, len(sched.Layers)), 0
	}
	failedCores = 0
	for _, word := range lostRanks {
		failedCores += bits.OnesCount64(word)
	}
	return done, errors.Join(errs...), failedCores
}
