package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/fault"
	"mtask/internal/graph"
)

// randomExecDAG generates a random M-task DAG for the layered-vs-wavefront
// equivalence property (forward edges only, occasionally with start/stop
// markers so the schedules contain tasks outside all layers).
func randomExecDAG(rng *rand.Rand) *graph.Graph {
	g := graph.New("rand")
	n := 3 + rng.Intn(20)
	ids := make([]graph.TaskID, n)
	for i := range ids {
		ids[i] = g.AddBasic(fmt.Sprintf("t%02d", i), 1e6*(1+9*rng.Float64()))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				g.MustEdge(ids[i], ids[j], 8)
			}
		}
	}
	if rng.Float64() < 0.3 {
		g.AddStartStop()
	}
	return g
}

func randomExecSchedule(t *testing.T, g *graph.Graph, P int) *core.Schedule {
	t.Helper()
	model := &cost.Model{Machine: arch.CHiC().Subset(2)}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, P)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// recordingBody is a deterministic group-collective workload: every rank
// contributes a value derived from the task name and its group rank, the
// group folds the contributions (collectives fold in rank order, so the
// result is bitwise deterministic), and rank 0 records the final value.
// Identical schedules must therefore produce bitwise identical recordings
// regardless of task launch order, retries, or executor mode.
func recordingBody(out *sync.Map) func(t *graph.Task) TaskFunc {
	return func(t *graph.Task) TaskFunc {
		name := t.Name
		return func(tc *TaskCtx) error {
			seed := 0.0
			for i, ch := range name {
				seed += float64(ch) * float64(i+1)
			}
			contrib := math.Sin(seed*0.01 + 1.7*float64(tc.Group.Rank()))
			sum := tc.Group.AllreduceSum(contrib)
			gathered := tc.Group.Allgather([]float64{contrib + sum})
			acc := sum
			for _, v := range gathered {
				acc = acc*1.0000001 + math.Cos(v)
			}
			if tc.Group.Rank() == 0 {
				out.Store(name, acc)
			}
			return nil
		}
	}
}

// runRecorded executes the schedule with recordingBody and returns the
// per-task recordings.
func runRecorded(t *testing.T, sched *core.Schedule, P int, opts ...ExecOption) (map[string]float64, *Report) {
	t.Helper()
	w, _ := NewWorld(P)
	var out sync.Map
	rep, err := ExecuteCtx(context.Background(), w, sched, recordingBody(&out), opts...)
	if err != nil {
		t.Fatalf("execution failed: %v\n%s", err, rep)
	}
	m := make(map[string]float64)
	out.Range(func(k, v any) bool {
		m[k.(string)] = v.(float64)
		return true
	})
	return m, rep
}

// compareBitwise fails unless the two recordings cover the same tasks with
// bitwise identical values.
func compareBitwise(t *testing.T, want, got map[string]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("recorded %d tasks, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("task %q not recorded", name)
		}
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("task %q diverged: %x vs %x", name, math.Float64bits(w), math.Float64bits(g))
		}
	}
}

func TestPropertyWavefrontMatchesLayered(t *testing.T) {
	// The equivalence property of the wavefront dispatcher: on the same
	// schedule, dependence-driven launch must produce bitwise identical
	// results to the layer-synchronous executor, for random DAGs and
	// varying core counts.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		g := randomExecDAG(rng)
		P := []int{4, 6, 8}[rng.Intn(3)]
		sched := randomExecSchedule(t, g, P)
		layered, lrep := runRecorded(t, sched, P)
		wave, wrep := runRecorded(t, sched, P, WithWavefront())
		compareBitwise(t, layered, wave)
		if lrep.Layers != len(sched.Layers) || wrep.Layers != len(sched.Layers) {
			t.Fatalf("trial %d: layers done = %d (layered) / %d (wavefront), want %d",
				trial, lrep.Layers, wrep.Layers, len(sched.Layers))
		}
		if len(wrep.Spans) != len(lrep.Spans) {
			t.Fatalf("trial %d: %d wavefront spans, %d layered", trial, len(wrep.Spans), len(lrep.Spans))
		}
	}
}

func TestPropertyWavefrontFaultsMatchLayered(t *testing.T) {
	// The equivalence must survive injected errors, panics and delays with
	// retries: the injector is deterministic per (task, attempt, rank), so
	// both modes see the same faults and must converge to the same bits.
	rng := rand.New(rand.NewSource(7))
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 20
	pol.BaseBackoff = 50 * time.Microsecond
	for trial := 0; trial < 6; trial++ {
		g := randomExecDAG(rng)
		sched := randomExecSchedule(t, g, 8)
		inj := &fault.Injector{Seed: int64(trial + 1), PError: 0.08, PPanic: 0.04, PDelay: 0.05, Delay: 100 * time.Microsecond}
		layered, _ := runRecorded(t, sched, 8, WithPolicy(pol), WithInjector(inj))
		wave, wrep := runRecorded(t, sched, 8, WithPolicy(pol), WithInjector(inj), WithWavefront())
		compareBitwise(t, layered, wave)
		if wrep.Layers != len(sched.Layers) {
			t.Fatalf("trial %d: wavefront completed %d of %d layers", trial, wrep.Layers, len(sched.Layers))
		}
	}
}

func TestWavefrontCrossLayerOverlap(t *testing.T) {
	// The defining behavior of the wavefront mode, deterministically: a
	// layer-0 task blocks until a layer-1 task on the other chain has
	// started. The layered executor cannot finish this program (no layer-1
	// task starts before the layer-0 join); the wavefront dispatcher must.
	sched := ImbalancedWorkload(2, 2)
	release := make(chan struct{})
	body := func(t *graph.Task) TaskFunc {
		switch t.Name {
		case "slow[0]": // layer 0, chain A: waits for the layer-1 starter
			return func(tc *TaskCtx) error {
				select {
				case <-release:
					return nil
				case <-tc.Ctx.Done():
					return tc.Ctx.Err()
				}
			}
		case "slow[1]": // layer 1, chain B: runs while slow[0] still blocks
			return func(tc *TaskCtx) error {
				close(release)
				return nil
			}
		default:
			return func(tc *TaskCtx) error { return nil }
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	w, _ := NewWorld(2)
	rep, err := ExecuteCtx(ctx, w, sched, body, WithWavefront())
	if err != nil {
		t.Fatalf("wavefront could not overlap layers: %v\n%s", err, rep)
	}
	if rep.Layers != 2 {
		t.Fatalf("layers done = %d, want 2", rep.Layers)
	}
}

func TestWavefrontRejectsGlobal(t *testing.T) {
	// Without a layer-synchronous epoch a global collective would deadlock
	// or mix layers, so touching TaskCtx.Global must fail fast with the
	// typed error — no retries, no degrade-and-replan escalation.
	_, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 3
	pol.BaseBackoff = 50 * time.Microsecond
	rep, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if task.Name == "b" {
				tc.Global.Barrier()
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol), WithWavefront())
	if err == nil {
		t.Fatal("global collective accepted in wavefront mode")
	}
	if !errors.Is(err, ErrGlobalInWavefront) {
		t.Fatalf("error does not match ErrGlobalInWavefront: %v", err)
	}
	if rep.Retries != 0 {
		t.Fatalf("a Global misuse was retried %d times: %s", rep.Retries, rep)
	}
}

func TestWavefrontCoreLossReplan(t *testing.T) {
	// Degrade-and-replan under the wavefront dispatcher: an exhausted
	// core-loss failure drains the in-flight frontier to the completed
	// layer prefix and replans on the survivors, like the layered mode.
	g, sched := diamondSchedule(t, 8)
	w, _ := NewWorld(8)
	inj := &fault.Injector{Script: []fault.Script{
		{Task: "b", Attempt: 1, Rank: 0, Kind: fault.CoreLoss},
	}}
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 50 * time.Microsecond
	pol.DegradeAndReplan = true
	var out sync.Map
	rep, err := ExecuteCtx(context.Background(), w, sched, recordingBody(&out),
		WithPolicy(pol), WithInjector(inj), WithReplanner(diamondReplanner(t, g)), WithWavefront())
	if err != nil {
		t.Fatalf("wavefront degrade-and-replan failed: %v\n%s", err, rep)
	}
	if rep.Replans != 1 {
		t.Fatalf("replans = %d, want 1\n%s", rep.Replans, rep)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, ok := out.Load(name); !ok {
			t.Fatalf("task %q never completed\n%s", name, rep)
		}
	}
	if rep.Layers < len(sched.Layers) {
		t.Fatalf("layers done = %d, want at least %d\n%s", rep.Layers, len(sched.Layers), rep)
	}
}

func TestWavefrontImbalancedFasterWithTimeline(t *testing.T) {
	// On the canonical imbalanced workload the wavefront mode must beat
	// the layered wall time, and the Report timeline must show the why:
	// a layer-1 task starting before layer 0 has fully finished.
	if testing.Short() {
		t.Skip("timing test")
	}
	const layers = 4
	slow, fast := 20*time.Millisecond, 2*time.Millisecond
	sched := ImbalancedWorkload(2, layers)
	body := ImbalancedBody(slow, fast)
	w, _ := NewWorld(2)

	lrep, err := ExecuteCtx(context.Background(), w, sched, body)
	if err != nil {
		t.Fatal(err)
	}
	wrep, err := ExecuteCtx(context.Background(), w, sched, body, WithWavefront())
	if err != nil {
		t.Fatal(err)
	}
	if wrep.Wall >= lrep.Wall {
		t.Fatalf("wavefront (%v) not faster than layered (%v)", wrep.Wall, lrep.Wall)
	}

	// The timeline explains the win: under wavefront some layer-1 span
	// starts before the last layer-0 span ends; under layered none can.
	lastEnd := func(spans []TaskSpan, layer int) time.Duration {
		var end time.Duration
		for _, s := range spans {
			if s.Layer == layer && s.End > end {
				end = s.End
			}
		}
		return end
	}
	firstStart := func(spans []TaskSpan, layer int) time.Duration {
		first := time.Duration(math.MaxInt64)
		for _, s := range spans {
			if s.Layer == layer && s.Start < first {
				first = s.Start
			}
		}
		return first
	}
	if got := firstStart(wrep.Timeline(), 1); got >= lastEnd(wrep.Timeline(), 0) {
		t.Fatalf("wavefront layer 1 first start %v not before layer 0 last end %v", got, lastEnd(wrep.Timeline(), 0))
	}
	if got := firstStart(lrep.Timeline(), 1); got < lastEnd(lrep.Timeline(), 0) {
		t.Fatalf("layered executor overlapped layers: layer 1 started %v, layer 0 ended %v", got, lastEnd(lrep.Timeline(), 0))
	}

	// The idle-core-time summary must attribute more utilization to the
	// wavefront run (same busy work, smaller P×Wall envelope).
	_, _, lfrac := lrep.Utilization()
	_, _, wfrac := wrep.Utilization()
	if wfrac <= lfrac {
		t.Fatalf("wavefront utilization %.3f not above layered %.3f", wfrac, lfrac)
	}
}
