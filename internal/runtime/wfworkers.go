package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"mtask/internal/core"
	"mtask/internal/graph"
	"mtask/internal/obs"
)

// WithChannelDispatcher selects the original channel-based wavefront
// dispatcher (one goroutine per launched task, completions funneled
// through a coordinator loop) instead of the persistent-worker
// dispatcher. The channel dispatcher is kept as the reference
// implementation: it is simpler to reason about, and the differential
// property tests run every workload through both and require
// bitwise-identical results. Production runs should not need this
// option.
func WithChannelDispatcher() ExecOption {
	return func(c *execConfig) { c.wfChannel = true }
}

// Task lifecycle states of the persistent-worker dispatcher.
const (
	wfPending uint32 = iota // not yet complete
	wfDone                  // completed successfully
	wfSkipped               // failed, or never launched because of the failure drain
)

// wfDispatcher is the shared state of one persistent-worker wavefront
// pass: P rank workers walk their precomputed occupancy chains and
// coordinate through atomic dependence counters — there is no central
// coordinator and no channel on the completion hot path.
//
// Ownership of the counters is what makes the lock-free scheme sound:
//
//   - remaining[t] is decremented only by completing predecessors of t
//     (each exactly once), and t's leader runs only after observing zero —
//     the decrement-to-zero is the launch event, and the soundness check
//     of core.PrecedenceOf (dependences point strictly backwards in the
//     schedule) makes the countdown deadlock-free.
//   - state[t] is written only by t's leader (the worker of rank
//     prec.Tasks[t].Lo); followers and draining workers only read it,
//     except for the pending→skipped CAS of the failure drain, which can
//     race only with the leader's own drain of the same entry.
//   - layerLeft[li] is decremented once per completed task of layer li;
//     whoever decrements it to zero advances the completed-layer prefix
//     under doneMu (the only lock, taken once per layer completion, not
//     per task).
//
// Parking uses one token channel of capacity 1 per worker with
// recheck-before-park loops: every producer changes the awaited atomic
// first and then deposits a token (non-blocking), every consumer
// re-checks the condition before each receive, so a coalesced or stale
// token is harmless and a wake is never lost.
type wfDispatcher struct {
	w      *World
	sched  *core.Schedule
	prec   *core.Precedence
	cfg    *execConfig
	rep    *Report
	body   func(t *graph.Task) TaskFunc
	ctx    context.Context
	global *lazyGlobal

	// identity is the 0..P-1 rank slab; group communicators of interval
	// [lo, hi) use identity[lo:hi] directly, so attempts never allocate a
	// rank slice.
	identity []int
	from     int

	// spawn selects the spawned-attempt fallback: when the policy sets a
	// per-attempt TaskTimeout, attempts must be abandonable, which a
	// persistent worker is not — leaders run the reference runAttempt
	// (fresh goroutines + watchdog) and followers stay out of the way.
	spawn bool

	remaining []atomic.Int32  // per task: outstanding dependences
	state     []atomic.Uint32 // per task: wfPending / wfDone / wfSkipped
	layerLeft []atomic.Int32  // per layer: tasks not yet complete

	doneMu sync.Mutex
	done   int // completed-layer prefix (the replan checkpoint)

	failing atomic.Bool
	errMu   sync.Mutex
	errs    []error
	lost    []uint64 // bitset of symbolic ranks owned by exhausted groups

	workers []wfWorker

	// ready/peakReady gauge the launch backlog: tasks whose dependences
	// have drained but whose leader has not started them yet.
	ready     atomic.Int64
	peakReady atomic.Int64
}

// wfWorker is the persistent worker of one symbolic rank. Exactly one
// goroutine runs wfWorker.run; the publication fields are read by
// follower workers with the seq atomic as the synchronization edge.
type wfWorker struct {
	d    *wfDispatcher
	rank int
	wake chan struct{} // capacity 1; token = "re-check your condition"

	// lastSeq[r] is the last attempt sequence number of leader rank r
	// this worker participated in (followers run each published attempt
	// exactly once).
	lastSeq []uint64

	// Leader-side attempt publication. gsh, fn, src and attempt are
	// written first, then seq is bumped, then curTask is set to the
	// scheduled task id (-1 outside a published attempt) — in that order,
	// so a follower that observes curTask == id is guaranteed to read this
	// publication's seq and fields, never a previous task's: sync/atomic
	// operations are sequentially consistent, so the follower's subsequent
	// seq load returns at least this publication's value, and it cannot
	// return more because the leader does not advance past an attempt
	// until every follower has run it (pending drains to zero).
	curTask atomic.Int64
	seq     atomic.Uint64
	pending atomic.Int32 // followers that have not finished the published attempt
	gsh     *commShared
	fn      TaskFunc
	src     *graph.Task
	attempt int
	errs    []error // per-group-rank results of the published attempt

	// Reusable per-rank scratch: handles and TaskCtx are rebuilt in place
	// for every body run, so steady-state dispatch allocates nothing.
	// Bodies must not retain the *TaskCtx past their return.
	tc     TaskCtx
	group  Comm
	global Comm

	wakeups       int64 // tokens consumed while parked
	chainLaunches int64 // leader tasks started without parking
}

// runWavefrontWorkersPass executes every layer from `from` on with the
// persistent-worker dispatcher. Results, retries, panic isolation, abort
// poisoning, the failure drain and the completed-layer-prefix checkpoint
// are semantically identical to runWavefrontPass (the channel reference
// dispatcher); only the dispatch mechanics differ — P persistent workers
// instead of a goroutine per task, atomic counter decrements instead of
// a serialized coordinator.
//
// One documented divergence: without a TaskTimeout, attempts run on the
// persistent workers themselves and cannot be abandoned, so caller
// cancellation is observed between attempts — an in-flight body that
// ignores its TaskCtx.Ctx runs to completion first (a body that honors
// the ctx fails the attempt, which aborts the group communicator and
// releases any peers blocked in collectives). With a TaskTimeout the
// spawned-attempt fallback keeps the reference watchdog-and-abandon
// semantics exactly.
func runWavefrontWorkersPass(ctx context.Context, w *World, sched *core.Schedule, from int,
	body func(t *graph.Task) TaskFunc, cfg *execConfig, rep *Report) (done int, err error, failedCores int) {

	prec, perr := core.PrecedenceOf(sched)
	if perr != nil {
		return from, fmt.Errorf("runtime: wavefront: %w", perr), 0
	}

	identity := identityRanks(sched.P)
	// Born poisoned, as in the channel dispatcher: the first global
	// collective fails fast with ErrGlobalInWavefront.
	global := newLazyGlobal(Global, identity, nil, nil)
	global.abort(ErrGlobalInWavefront)

	d := &wfDispatcher{
		w: w, sched: sched, prec: prec, cfg: cfg, rep: rep, body: body, ctx: ctx,
		global:    global,
		identity:  identity,
		from:      from,
		spawn:     cfg.policy.TaskTimeout > 0,
		remaining: make([]atomic.Int32, len(prec.Tasks)),
		state:     make([]atomic.Uint32, len(prec.Tasks)),
		layerLeft: make([]atomic.Int32, len(sched.Layers)),
		lost:      make([]uint64, (sched.P+63)/64),
		workers:   make([]wfWorker, sched.P),
		done:      from,
	}

	// Seed the dependence counters. Layers before `from` are the completed
	// checkpoint of a previous pass (or replan): their tasks do not run
	// again and their outgoing dependences count as satisfied.
	for _, id := range prec.Scheduled {
		td := prec.Tasks[id]
		if td.Layer < from {
			continue
		}
		d.layerLeft[td.Layer].Add(1)
		n := 0
		for _, dep := range td.Deps {
			if prec.Tasks[dep].Layer >= from {
				n++
			}
		}
		d.remaining[id].Store(int32(n))
		if n == 0 {
			d.noteReady()
		}
	}
	d.advance() // layers with no tasks complete immediately

	errSlab := make([]error, sched.P*prec.MaxGroup)
	seqSlab := make([]uint64, sched.P*sched.P)
	for r := range d.workers {
		wk := &d.workers[r]
		wk.d = d
		wk.rank = r
		wk.wake = make(chan struct{}, 1)
		wk.curTask.Store(-1)
		if prec.MaxGroup > 0 {
			wk.errs = errSlab[r*prec.MaxGroup : (r+1)*prec.MaxGroup]
		}
		wk.lastSeq = seqSlab[r*sched.P : (r+1)*sched.P]
	}

	var wg sync.WaitGroup
	for r := range d.workers {
		wg.Add(1)
		go func(wk *wfWorker) {
			defer wg.Done()
			wk.run()
		}(&d.workers[r])
	}
	wg.Wait()

	if cfg.rec != nil {
		var wakeups, chainLaunches int64
		for r := range d.workers {
			wakeups += d.workers[r].wakeups
			chainLaunches += d.workers[r].chainLaunches
		}
		cfg.rec.Counter("exec.wf.wakeups").Add(wakeups)
		cfg.rec.Counter("exec.wf.chain_launches").Add(chainLaunches)
		cfg.rec.Counter("exec.wf.peak_ready").Add(d.peakReady.Load())
	}

	for _, word := range d.lost {
		failedCores += bits.OnesCount64(word)
	}
	done = d.done // workers joined: no lock needed
	if len(d.errs) == 0 && done != len(sched.Layers) {
		// Cannot happen for a valid schedule (PrecedenceOf proves the
		// dependences acyclic), but a stall must be an error, not a silent
		// partial result.
		return done, d.stallError(done), 0
	}
	return done, errors.Join(d.errs...), failedCores
}

// run walks the worker's occupancy chain: lead the tasks whose interval
// starts at this rank, follow the rest. On a failure drain the worker
// marks its remaining leader entries skipped (waking their followers) and
// exits; the frontier of in-flight attempts drains through their own
// leaders exactly as in the channel dispatcher.
func (wk *wfWorker) run() {
	d := wk.d
	chain := d.prec.Chains[wk.rank]
	for i, id := range chain {
		td := d.prec.Tasks[id]
		if td.Layer < d.from {
			continue
		}
		if td.Lo == wk.rank {
			if !wk.lead(td) {
				wk.drainChain(chain[i:])
				return
			}
		} else if !d.spawn {
			wk.follow(td)
		}
		// Spawned-attempt mode: non-leader entries run on goroutines
		// spawned by the leader's runAttempt; this worker just moves on
		// (ordering is still enforced by the dependence counters).
	}
}

// lead waits for the task's dependence counter to drain, then runs it
// with the full retry loop. It returns false when the dispatcher entered
// the failure drain (whether by this task's failure or another's) and
// the worker must stop launching.
func (wk *wfWorker) lead(td *core.TaskDeps) bool {
	d := wk.d
	parked := false
	for d.remaining[td.ID].Load() != 0 {
		if d.failing.Load() {
			return false
		}
		<-wk.wake
		wk.wakeups++
		parked = true
	}
	if d.failing.Load() {
		return false // became ready during the drain: do not launch
	}
	if !parked {
		wk.chainLaunches++
	}
	d.ready.Add(-1)

	var coop *wfWorker
	if !d.spawn {
		coop = wk
	}
	// curTask is NOT set here: it is published per attempt inside
	// coopAttempt, strictly after the attempt's fields and seq, so
	// followers can never observe the task id before its publication.
	err, exhausted := runScheduledTask(d.ctx, d.w, d.sched, td.Layer, td.Group, td.Lo, td.Hi,
		td.ID, d.global, d.body, d.cfg, d.rep, coop)
	if err != nil {
		d.fail(td, err, exhausted)
		return false
	}
	d.complete(td)
	return true
}

// follow participates in the attempts of a task led by another rank:
// park until the task settles (done or skipped) or the leader publishes
// an attempt this worker has not run yet, then run this rank's share of
// the body and report back through the leader's pending counter.
func (wk *wfWorker) follow(td *core.TaskDeps) {
	d := wk.d
	ld := &d.workers[td.Lo]
	r := wk.rank - td.Lo // this worker's rank within the group
	for {
		if d.state[td.ID].Load() != wfPending {
			return
		}
		if ld.curTask.Load() == int64(td.ID) {
			// curTask is stored after the seq bump, which is stored after
			// gsh/fn/src/attempt and this rank's errs-slot reset, so having
			// observed curTask == id this seq load returns at least the
			// current publication's value — and not more, because the
			// leader cannot publish the next attempt until this worker
			// decrements pending. Observing seq is therefore the
			// synchronization edge for the publication fields, and the
			// fields stay stable until this worker reports back.
			if sq := ld.seq.Load(); sq != wk.lastSeq[td.Lo] {
				wk.lastSeq[td.Lo] = sq
				wk.runFollower(ld, td, r)
				continue
			}
		}
		<-wk.wake
		wk.wakeups++
	}
}

// runFollower executes this rank's body of the leader's published
// attempt. The last follower to finish wakes the leader.
func (wk *wfWorker) runFollower(ld *wfWorker, td *core.TaskDeps, r int) {
	d := wk.d
	gsh, fn, src, attempt := ld.gsh, ld.fn, ld.src, ld.attempt
	wk.group = Comm{shared: gsh, rank: r}
	wk.global = Comm{lazy: d.global, rank: wk.rank}
	wk.tc = TaskCtx{
		Group:      &wk.group,
		Global:     &wk.global,
		Task:       src,
		Layer:      td.Layer,
		GroupIndex: int(td.Group),
		Ctx:        d.ctx,
	}
	ld.errs[r] = runRankAttempt(&wk.tc, fn, attempt, gsh, d.cfg)
	if ld.pending.Add(-1) == 0 {
		d.wakeWorker(ld.rank)
	}
}

// coopAttempt runs one attempt of one source task cooperatively on the
// persistent workers of the group's interval: the leader builds a fresh
// pooled group communicator over identity[lo:hi], publishes the attempt
// to its followers, runs its own rank-0 share, waits for the followers
// and settles — the exact runAttempt semantics minus the per-attempt
// goroutines and watchdog (see runWavefrontWorkersPass for the
// cancellation caveat that buys).
func (wk *wfWorker) coopAttempt(t *graph.Task, fn TaskFunc, attempt, li int, gi core.GroupID, id graph.TaskID, lo, hi int) error {
	d := wk.d
	size := hi - lo
	gsh := newCommShared(Group, d.identity[lo:hi], &d.w.Stats, d.cfg.rec)

	if size > 1 {
		wk.gsh, wk.fn, wk.src, wk.attempt = gsh, fn, t, attempt
		for i := 1; i < size; i++ {
			wk.errs[i] = nil
		}
		wk.pending.Store(int32(size - 1))
		wk.seq.Add(1)
		// Publish the task id LAST. The leader's seq counter is cumulative
		// across every task it leads, so a follower joining this leader for
		// the first time has lastSeq == 0 while seq may already be large;
		// if curTask were visible before the bump, that follower could pass
		// the seq != lastSeq check against a stale seq and run the previous
		// task's fields — a released communicator, the wrong body, and a
		// spurious pending decrement. Storing curTask after seq closes
		// that window: curTask == id implies the publication is complete.
		wk.curTask.Store(int64(id))
		for r := lo + 1; r < hi; r++ {
			d.wakeWorker(r)
		}
	}

	wk.group = Comm{shared: gsh, rank: 0}
	wk.global = Comm{lazy: d.global, rank: lo}
	wk.tc = TaskCtx{
		Group:      &wk.group,
		Global:     &wk.global,
		Task:       t,
		Layer:      li,
		GroupIndex: int(gi),
		Ctx:        d.ctx,
	}
	wk.errs[0] = runRankAttempt(&wk.tc, fn, attempt, gsh, d.cfg)

	for size > 1 && wk.pending.Load() != 0 {
		<-wk.wake
		wk.wakeups++
	}
	if size > 1 {
		// Every follower has run this publication and reported back;
		// retract the id before releasing the communicator so curTask != -1
		// always means "publication live" (a late re-check between the
		// drain and this store matches lastSeq and parks harmlessly).
		wk.curTask.Store(-1)
	}
	err := settleAttempt(t, d.rep, wk.errs[:size], d.ctx)
	gsh.release() // attempt settled: no rank holds the comm anymore
	return err
}

// complete marks a task done, advances the completed-layer prefix when
// its layer drains, decrements the successors' dependence counters
// (whoever reaches zero wakes the successor's leader) and wakes the
// task's followers so they move past it.
func (d *wfDispatcher) complete(td *core.TaskDeps) {
	d.state[td.ID].Store(wfDone)
	if d.layerLeft[td.Layer].Add(-1) == 0 {
		d.advance()
	}
	for _, su := range td.Succs {
		if d.remaining[su].Add(-1) == 0 {
			d.noteReady()
			if lo := d.prec.Tasks[su].Lo; lo != td.Lo {
				d.wakeWorker(lo)
			}
			// A successor led by this same rank is a chain-local launch:
			// the worker finds the drained counter on its own next chain
			// step, no token needed.
		}
	}
	for r := td.Lo + 1; r < td.Hi; r++ {
		d.wakeWorker(r)
	}
}

// advance moves the completed-layer prefix over every drained layer,
// recording the checkpoint exactly like the channel dispatcher.
func (d *wfDispatcher) advance() {
	d.doneMu.Lock()
	for d.done < len(d.layerLeft) && d.layerLeft[d.done].Load() == 0 {
		d.rep.layerDone()
		d.cfg.rec.Instant("layer-done", "exec", obs.ControlRank, d.cfg.rec.Now())
		d.done++
	}
	d.doneMu.Unlock()
}

// fail records a terminal task failure, marks the lost ranks of an
// exhausted group in the bitset, enters the failure drain and wakes every
// worker so parked leaders stop launching and parked followers drain.
func (d *wfDispatcher) fail(td *core.TaskDeps, err error, exhausted bool) {
	d.errMu.Lock()
	d.errs = append(d.errs, fmt.Errorf("layer %d group %d: %w", td.Layer, td.Group, err))
	if exhausted {
		// The union of exhausted groups' rank intervals: concurrent
		// failures in different layers may claim overlapping ranks, and a
		// symbolic core is only lost once.
		for r := td.Lo; r < td.Hi; r++ {
			d.lost[r>>6] |= 1 << (uint(r) & 63)
		}
	}
	d.errMu.Unlock()
	d.state[td.ID].Store(wfSkipped)
	d.failing.Store(true)
	d.wakeAll()
}

// drainChain marks the worker's remaining leader entries skipped and
// wakes their followers; together with every other draining leader this
// guarantees all parked followers terminate.
func (wk *wfWorker) drainChain(rest []graph.TaskID) {
	d := wk.d
	for _, id := range rest {
		td := d.prec.Tasks[id]
		if td.Layer < d.from || td.Lo != wk.rank {
			continue
		}
		if d.state[id].CompareAndSwap(wfPending, wfSkipped) {
			for r := td.Lo + 1; r < td.Hi; r++ {
				d.wakeWorker(r)
			}
		}
	}
}

// wakeWorker deposits a recheck token for the rank's worker; a token
// already in flight is enough, so the send never blocks.
func (d *wfDispatcher) wakeWorker(rank int) {
	select {
	case d.workers[rank].wake <- struct{}{}:
	default:
	}
}

func (d *wfDispatcher) wakeAll() {
	for r := range d.workers {
		d.wakeWorker(r)
	}
}

// noteReady tracks the launch-backlog gauge: one more task is ready but
// not yet started by its leader.
func (d *wfDispatcher) noteReady() {
	n := d.ready.Add(1)
	for {
		pk := d.peakReady.Load()
		if n <= pk || d.peakReady.CompareAndSwap(pk, n) {
			break
		}
	}
}

// stallError names the first task that never completed, making an
// internal-error stall diagnosable.
func (d *wfDispatcher) stallError(done int) error {
	for _, id := range d.prec.Scheduled {
		td := d.prec.Tasks[id]
		if td.Layer >= d.from && d.state[id].Load() != wfDone {
			return fmt.Errorf("runtime: wavefront stalled after layer %d of %d at task %d (layer %d group %d) (internal error)",
				done, len(d.sched.Layers), id, td.Layer, td.Group)
		}
	}
	return fmt.Errorf("runtime: wavefront stalled after layer %d of %d (internal error)", done, len(d.sched.Layers))
}
