package runtime

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtask/internal/core"
	"mtask/internal/fault"
	"mtask/internal/graph"
)

// gridSchedule hand-builds a schedule of `layers` layers, each with
// p/gsize independent groups of gsize ranks running one task — a dense
// regular DAG (each chain's task depends on its predecessor) big enough
// to measure per-task dispatch cost without paying a scheduler pass. It
// satisfies every invariant of core.Schedule.Validate and
// core.PrecedenceOf.
func gridSchedule(p, layers, gsize int) *core.Schedule {
	if p%gsize != 0 {
		panic("gridSchedule: p must be a multiple of gsize")
	}
	ng := p / gsize
	g := graph.New("grid")
	sched := &core.Schedule{P: p}
	prev := make([]graph.TaskID, ng)
	for li := 0; li < layers; li++ {
		ls := &core.LayerSchedule{Groups: make([][]graph.TaskID, ng), Sizes: make([]int, ng)}
		for c := 0; c < ng; c++ {
			id := g.AddBasic("g"+strconv.Itoa(c)+"."+strconv.Itoa(li), 1)
			if li > 0 {
				g.MustEdge(prev[c], id, 8)
			}
			prev[c] = id
			ls.Layer = append(ls.Layer, id)
			ls.Groups[c] = []graph.TaskID{id}
			ls.Sizes[c] = gsize
		}
		sched.Layers = append(sched.Layers, ls)
	}
	sched.Source = g
	sched.Graph = g
	return sched
}

func TestPropertyWorkersMatchChannelDispatcher(t *testing.T) {
	// The differential property of the persistent-worker dispatcher: on
	// the same schedule it must produce bitwise identical results, the
	// same completed-layer count and the same number of successful spans
	// as the channel reference dispatcher, for random DAGs and varying
	// core counts.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		g := randomExecDAG(rng)
		P := []int{4, 6, 8}[rng.Intn(3)]
		sched := randomExecSchedule(t, g, P)
		ref, rrep := runRecorded(t, sched, P, WithWavefront(), WithChannelDispatcher())
		got, wrep := runRecorded(t, sched, P, WithWavefront())
		compareBitwise(t, ref, got)
		if wrep.Layers != rrep.Layers || wrep.Layers != len(sched.Layers) {
			t.Fatalf("trial %d: layers done = %d (workers) / %d (channel), want %d",
				trial, wrep.Layers, rrep.Layers, len(sched.Layers))
		}
		if len(wrep.Spans) != len(rrep.Spans) {
			t.Fatalf("trial %d: %d worker spans, %d channel spans", trial, len(wrep.Spans), len(rrep.Spans))
		}
	}
}

func TestPropertyWorkersFaultsMatchChannel(t *testing.T) {
	// Equivalence under injected errors, panics and delays with retries:
	// the injector is deterministic per (task, attempt, rank), so both
	// dispatchers see the same fault sequence per task and must converge
	// to the same bits with the same retry and panic totals.
	rng := rand.New(rand.NewSource(17))
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 20
	pol.BaseBackoff = 50 * time.Microsecond
	for trial := 0; trial < 6; trial++ {
		g := randomExecDAG(rng)
		sched := randomExecSchedule(t, g, 8)
		inj := &fault.Injector{Seed: int64(trial + 1), PError: 0.08, PPanic: 0.04, PDelay: 0.05, Delay: 100 * time.Microsecond}
		ref, rrep := runRecorded(t, sched, 8, WithPolicy(pol), WithInjector(inj), WithWavefront(), WithChannelDispatcher())
		got, wrep := runRecorded(t, sched, 8, WithPolicy(pol), WithInjector(inj), WithWavefront())
		compareBitwise(t, ref, got)
		if wrep.Layers != rrep.Layers {
			t.Fatalf("trial %d: layers done = %d (workers) / %d (channel)", trial, wrep.Layers, rrep.Layers)
		}
		if wrep.Retries != rrep.Retries || wrep.Panics != rrep.Panics {
			t.Fatalf("trial %d: retries/panics = %d/%d (workers), %d/%d (channel)",
				trial, wrep.Retries, wrep.Panics, rrep.Retries, rrep.Panics)
		}
	}
}

func TestPropertyWorkersCoreLossCheckpointMatchesChannel(t *testing.T) {
	// A scripted mid-run core loss is fully deterministic, so the two
	// dispatchers must agree on the degrade-and-replan bookkeeping too:
	// same replan count, same lost cores, same completed-layer
	// checkpoints, and bitwise identical outputs after the resume.
	g, sched := diamondSchedule(t, 8)
	pol := fault.DefaultPolicy()
	pol.BaseBackoff = 50 * time.Microsecond
	pol.DegradeAndReplan = true

	run := func(opts ...ExecOption) (map[string]float64, *Report) {
		inj := &fault.Injector{Script: []fault.Script{
			{Task: "b", Attempt: 1, Rank: 0, Kind: fault.CoreLoss},
		}}
		w, _ := NewWorld(8)
		var out sync.Map
		rep, err := ExecuteCtx(context.Background(), w, sched, recordingBody(&out),
			append([]ExecOption{WithPolicy(pol), WithInjector(inj), WithReplanner(diamondReplanner(t, g)), WithWavefront()}, opts...)...)
		if err != nil {
			t.Fatalf("degrade-and-replan failed: %v\n%s", err, rep)
		}
		m := make(map[string]float64)
		out.Range(func(k, v any) bool {
			m[k.(string)] = v.(float64)
			return true
		})
		return m, rep
	}

	ref, rrep := run(WithChannelDispatcher())
	got, wrep := run()
	compareBitwise(t, ref, got)
	if wrep.Replans != rrep.Replans || wrep.Replans != 1 {
		t.Fatalf("replans = %d (workers) / %d (channel), want 1\nworkers: %schannel: %s", wrep.Replans, rrep.Replans, wrep, rrep)
	}
	if wrep.LostCores != rrep.LostCores {
		t.Fatalf("lost cores = %d (workers) / %d (channel)\nworkers: %schannel: %s", wrep.LostCores, rrep.LostCores, wrep, rrep)
	}
	if wrep.Layers != rrep.Layers {
		t.Fatalf("layers done = %d (workers) / %d (channel)\nworkers: %schannel: %s", wrep.Layers, rrep.Layers, wrep, rrep)
	}
}

func TestPropertyWorkersSpawnModeMatchesChannel(t *testing.T) {
	// A policy with a per-attempt TaskTimeout routes leaders through the
	// spawned-attempt fallback (attempts must be abandonable). The
	// fallback must preserve the differential property under faults just
	// like the cooperative path.
	rng := rand.New(rand.NewSource(23))
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 20
	pol.BaseBackoff = 50 * time.Microsecond
	pol.TaskTimeout = 30 * time.Second // generous: selects the spawn path, never fires
	for trial := 0; trial < 4; trial++ {
		g := randomExecDAG(rng)
		sched := randomExecSchedule(t, g, 8)
		inj := &fault.Injector{Seed: int64(trial + 41), PError: 0.08, PPanic: 0.04}
		ref, _ := runRecorded(t, sched, 8, WithPolicy(pol), WithInjector(inj), WithWavefront(), WithChannelDispatcher())
		got, wrep := runRecorded(t, sched, 8, WithPolicy(pol), WithInjector(inj), WithWavefront())
		compareBitwise(t, ref, got)
		if wrep.Layers != len(sched.Layers) {
			t.Fatalf("trial %d: workers completed %d of %d layers", trial, wrep.Layers, len(sched.Layers))
		}
	}
}

func TestWorkersTaskTimeoutUnblocksBarrier(t *testing.T) {
	// The watchdog semantics of the spawn fallback, end to end: one rank
	// hangs past the per-attempt deadline while its peers wait at a group
	// barrier. The persistent-worker dispatcher must abort the attempt's
	// communicator (releasing the peers) and fail with DeadlineExceeded —
	// and the persistent workers themselves must not deadlock.
	sched := gridSchedule(4, 2, 4)
	w, _ := NewWorld(4)
	pol := fault.Policy{TaskTimeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := ExecuteCtx(context.Background(), w, sched, func(task *graph.Task) TaskFunc {
		hang := task.Name == "g0.1"
		return func(tc *TaskCtx) error {
			if hang && tc.Group.Rank() == 0 {
				select { // hang, but respect the attempt context
				case <-tc.Ctx.Done():
					return tc.Ctx.Err()
				case <-time.After(10 * time.Second):
				}
			}
			tc.Group.Barrier()
			return nil
		}
	}, WithPolicy(pol), WithWavefront())
	if err == nil {
		t.Fatal("timeout not reported")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("barrier deadlocked for %v", elapsed)
	}
}

func TestWorkersCancellationObservedBetweenAttempts(t *testing.T) {
	// The documented divergence of the cooperative path: caller
	// cancellation is observed between attempts. A body that honors its
	// TaskCtx.Ctx unblocks immediately; the dispatcher must then stop
	// launching and return the cancellation, with all workers joined.
	sched := gridSchedule(2, 50, 1)
	w, _ := NewWorld(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	body := func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			if ran.Add(1) == 4 {
				cancel()
			}
			select {
			case <-tc.Ctx.Done():
				return tc.Ctx.Err()
			default:
				return nil
			}
		}
	}
	rep, err := ExecuteCtx(ctx, w, sched, body, WithWavefront())
	if err == nil {
		t.Fatalf("cancellation not reported\n%s", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Fatalf("all %d tasks ran despite cancellation", n)
	}
}

func TestWorkersStalePublicationRace(t *testing.T) {
	// Regression test for the stale attempt-publication race: a leader's
	// seq counter is cumulative across every task it leads, so after rank
	// 0 leads a group excluding rank 2 (rank 0's seq advances while rank
	// 2's lastSeq[0] stays behind), rank 2 joins rank 0's next group with
	// seq != lastSeq already true. If the task id were published before
	// the attempt's fields and seq bump, rank 2 could observe the id,
	// pass the seq check against the stale value and run the previous
	// task's publication — a released pooled communicator, the wrong
	// body, and a spurious pending decrement. Alternating {[0,2),[2,3)}
	// and {[0,3)} layers re-arm that window every round; the barrier in
	// each body makes a stale run collide instead of passing silently,
	// and the run counter catches any double-executed rank.
	const rounds = 200
	g := graph.New("stale")
	sched := &core.Schedule{P: 3}
	var prev []graph.TaskID
	for li := 0; li < 2*rounds; li++ {
		var ls *core.LayerSchedule
		var ids []graph.TaskID
		if li%2 == 0 {
			a := g.AddBasic("a"+strconv.Itoa(li), 1)
			c := g.AddBasic("c"+strconv.Itoa(li), 1)
			ls = &core.LayerSchedule{
				Layer:  []graph.TaskID{a, c},
				Groups: [][]graph.TaskID{{a}, {c}},
				Sizes:  []int{2, 1},
			}
			ids = []graph.TaskID{a, c}
		} else {
			wt := g.AddBasic("w"+strconv.Itoa(li), 1)
			ls = &core.LayerSchedule{
				Layer:  []graph.TaskID{wt},
				Groups: [][]graph.TaskID{{wt}},
				Sizes:  []int{3},
			}
			ids = []graph.TaskID{wt}
		}
		for _, p := range prev {
			for _, id := range ids {
				g.MustEdge(p, id, 1)
			}
		}
		prev = ids
		sched.Layers = append(sched.Layers, ls)
	}
	sched.Source = g
	sched.Graph = g

	var runs atomic.Int64
	body := func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			runs.Add(1)
			tc.Group.Barrier()
			return nil
		}
	}
	w, _ := NewWorld(3)
	rep, err := ExecuteCtx(context.Background(), w, sched, body, WithWavefront(), WithoutTimeline())
	if err != nil {
		t.Fatalf("execution failed: %v\n%s", err, rep)
	}
	// Per round: the size-2 group runs 2 rank bodies, the singleton 1,
	// the size-3 group 3 — every rank of every group exactly once.
	if want := int64(rounds * 6); runs.Load() != want {
		t.Fatalf("body ran %d times, want %d (a stale publication double-runs a rank)", runs.Load(), want)
	}
}

func TestWavefrontDispatchAllocFree(t *testing.T) {
	// The headline perf gate: steady-state dispatch must not allocate per
	// task. The fixed setup cost of a pass (precedence metadata slabs,
	// worker slabs, P wake channels) is constant in the task count, so
	// amortized over a few thousand tasks the per-task share must be a
	// rounding error — a goroutine-per-task dispatcher costs several
	// allocations per task and fails this hard.
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race (instrumentation + sync.Pool drops)")
	}
	const tasks = 4 * 500 // p/gsize groups × layers
	sched := gridSchedule(8, 500, 2)
	w, _ := NewWorld(8)
	shared := func(tc *TaskCtx) error { return nil }
	body := func(task *graph.Task) TaskFunc { return shared }

	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ExecuteCtx(context.Background(), w, sched, body, WithWavefront(), WithoutTimeline()); err != nil {
			t.Fatal(err)
		}
	})
	perTask := allocs / tasks
	t.Logf("dispatch: %.0f allocs per pass, %.4f per task (%d tasks)", allocs, perTask, tasks)
	if perTask >= 0.5 {
		t.Fatalf("dispatch allocates %.4f per task (%.0f per %d-task pass), want amortized-free", perTask, allocs, tasks)
	}
}

func TestWavefrontPeakGoroutinesConstant(t *testing.T) {
	// The scaling gate: the persistent-worker dispatcher runs P workers
	// for the whole pass, so the peak goroutine count must be O(P) — not
	// O(in-flight tasks) like a goroutine-per-task dispatcher.
	const P = 8
	sched := gridSchedule(P, 200, 1)
	w, _ := NewWorld(P)
	var peak atomic.Int64
	body := func(task *graph.Task) TaskFunc {
		return func(tc *TaskCtx) error {
			n := int64(runtime.NumGoroutine())
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					return nil
				}
			}
		}
	}
	baseline := runtime.NumGoroutine()
	if _, err := ExecuteCtx(context.Background(), w, sched, body, WithWavefront(), WithoutTimeline()); err != nil {
		t.Fatal(err)
	}
	extra := int(peak.Load()) - baseline
	t.Logf("peak goroutines: baseline %d, peak %d (+%d) for P=%d", baseline, peak.Load(), extra, P)
	if extra > P+4 {
		t.Fatalf("peak goroutines %d above baseline %d for P=%d: dispatch is not O(P)", extra, baseline, P)
	}
}

func TestWithoutTimelineLeanReport(t *testing.T) {
	// WithoutTimeline must drop the O(tasks) report state — no spans, no
	// per-task entries for clean tasks — while keeping the totals, the
	// busy core-time accumulator and the full history of every task that
	// needed fault handling (scripted injection keys on attempt numbers,
	// which must stay correct).
	sched := ImbalancedWorkload(2, 3)
	body := ImbalancedBody(2*time.Millisecond, time.Millisecond)
	pol := fault.DefaultPolicy()
	pol.MaxRetries = 3
	pol.BaseBackoff = 50 * time.Microsecond
	inj := &fault.Injector{Script: []fault.Script{
		{Task: "slow[1]", Attempt: 1, Rank: 0, Kind: fault.Error},
	}}
	modes := map[string][]ExecOption{
		"layered":  {WithoutTimeline()},
		"workers":  {WithoutTimeline(), WithWavefront()},
		"channel":  {WithoutTimeline(), WithWavefront(), WithChannelDispatcher()},
		"timeline": {WithWavefront()}, // control: spans retained by default
	}
	for mode, opts := range modes {
		w, _ := NewWorld(2)
		rep, err := ExecuteCtx(context.Background(), w, sched, body,
			append([]ExecOption{WithPolicy(pol), WithInjector(inj)}, opts...)...)
		if err != nil {
			t.Fatalf("%s: %v\n%s", mode, err, rep)
		}
		if mode == "timeline" {
			if len(rep.Spans) != 6 {
				t.Fatalf("timeline control retained %d spans, want 6", len(rep.Spans))
			}
			continue
		}
		if len(rep.Spans) != 0 || len(rep.Timeline()) != 0 {
			t.Fatalf("%s: lean report retained %d spans", mode, len(rep.Spans))
		}
		busy, _, frac := rep.Utilization()
		if busy <= 0 || frac <= 0 {
			t.Fatalf("%s: lean report lost core-time: busy %v, frac %.3f\n%s", mode, busy, frac, rep)
		}
		if rep.Layers != 3 {
			t.Fatalf("%s: layers done = %d, want 3\n%s", mode, rep.Layers, rep)
		}
		// Only the fault-touched task has a history entry, with the
		// fast-pathed first attempt back-counted.
		if len(rep.Tasks) != 1 {
			t.Fatalf("%s: lean report holds %d task entries, want 1\n%s", mode, len(rep.Tasks), rep)
		}
		tr := rep.Task("slow[1]")
		if tr.Attempts != 2 || tr.Retries != 1 || tr.Failures != 1 {
			t.Fatalf("%s: slow[1] history = %+v, want attempts 2, retries 1, failures 1", mode, tr)
		}
	}
}
