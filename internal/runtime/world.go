package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"mtask/internal/obs"
)

// World is a set of P symbolic cores realised as goroutines, with a global
// communicator and shared operation statistics.
type World struct {
	P     int
	Stats Stats
	// Trace, when non-nil, records per-rank collective counters and
	// barrier-wait spans for runs driven through Run/RunCtx (the ODE
	// solver path). The executor path (ExecuteCtx) attaches a recorder
	// through the WithRecorder option instead.
	Trace *obs.Recorder
}

// NewWorld returns a world of p cores.
func NewWorld(p int) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("runtime: world needs at least one core, got %d", p)
	}
	return &World{P: p}, nil
}

// PanicError is a panic recovered from a task body or core goroutine,
// converted to an error with the panicking goroutine's stack captured at
// recovery time.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runtime: recovered panic: %v\n%s", e.Value, e.Stack)
}

// identityRanks returns [0, 1, ..., n).
func identityRanks(n int) []int {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// Run executes fn on every core concurrently, passing each goroutine its
// own handle of the global communicator, and waits for all cores to
// finish. Run may be called repeatedly; statistics accumulate until Reset.
//
// A panic in a core goroutine no longer crashes the process: the world
// communicator is aborted (releasing peers blocked in collectives) and the
// first recovered panic is re-raised on the calling goroutine as a
// *PanicError carrying the original stack, where the caller can recover
// it. Use RunCtx to receive panics as errors instead.
func (w *World) Run(fn func(c *Comm)) {
	err := w.RunCtx(context.Background(), func(c *Comm) error {
		fn(c)
		return nil
	})
	var pe *PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
}

// RunCtx executes fn on every core concurrently like Run, with
// cancellation and panic isolation: canceling ctx aborts the world
// communicator (collectives unblock and fail), a goroutine that panics has
// the panic recovered into a *PanicError with stack capture, and a
// goroutine that fails — by returning a non-nil error or panicking —
// aborts the communicator so its peers cannot deadlock at a collective.
// The per-rank errors are aggregated with errors.Join in rank order.
func (w *World) RunCtx(ctx context.Context, fn func(c *Comm) error) error {
	shared := newCommShared(Global, identityRanks(w.P), &w.Stats, w.Trace)
	stop := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				shared.abort(ctx.Err())
			case <-stop:
			}
		}()
	}
	errs := make([]error, w.P)
	var wg sync.WaitGroup
	wg.Add(w.P)
	for r := 0; r < w.P; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if ae, ok := p.(*AbortError); ok {
						errs[rank] = ae
					} else {
						errs[rank] = &PanicError{Value: p, Stack: debug.Stack()}
					}
				}
				if errs[rank] != nil {
					shared.abort(errs[rank])
				}
			}()
			errs[rank] = fn(&Comm{shared: shared, rank: rank})
		}(r)
	}
	wg.Wait()
	close(stop)
	joined := make([]error, 0, w.P)
	for rank, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("rank %d: %w", rank, err))
		}
	}
	return errors.Join(joined...)
}

// BlockRange splits n items over size ranks in contiguous blocks and
// returns the half-open range of the given rank. The first n%size ranks
// receive one extra item.
func BlockRange(n, size, rank int) (lo, hi int) {
	base, rem := n/size, n%size
	lo = rank*base + min(rank, rem)
	cnt := base
	if rank < rem {
		cnt++
	}
	return lo, lo + cnt
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
