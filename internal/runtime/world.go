package runtime

import (
	"fmt"
	"sync"
)

// World is a set of P symbolic cores realised as goroutines, with a global
// communicator and shared operation statistics.
type World struct {
	P     int
	Stats Stats
}

// NewWorld returns a world of p cores.
func NewWorld(p int) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("runtime: world needs at least one core, got %d", p)
	}
	return &World{P: p}, nil
}

// Run executes fn on every core concurrently, passing each goroutine its
// own handle of the global communicator, and waits for all cores to
// finish. Run may be called repeatedly; statistics accumulate until Reset.
func (w *World) Run(fn func(c *Comm)) {
	shared := &commShared{
		kind:  Global,
		ranks: make([]int, w.P),
		bar:   newBarrier(w.P),
		slots: make([]any, w.P),
		stats: &w.Stats,
	}
	for i := range shared.ranks {
		shared.ranks[i] = i
	}
	var wg sync.WaitGroup
	wg.Add(w.P)
	for r := 0; r < w.P; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{shared: shared, rank: rank})
		}(r)
	}
	wg.Wait()
}

// BlockRange splits n items over size ranks in contiguous blocks and
// returns the half-open range of the given rank. The first n%size ranks
// receive one extra item.
func BlockRange(n, size, rank int) (lo, hi int) {
	base, rem := n/size, n%size
	lo = rank*base + min(rank, rem)
	cnt := base
	if rank < rem {
		cnt++
	}
	return lo, lo + cnt
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
