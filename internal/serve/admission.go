package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// ErrOverloaded is the sentinel wrapped by every load-shedding rejection:
// the global concurrency limit is saturated and the wait queue is full.
// The HTTP layer maps it to 503 Service Unavailable with a Retry-After
// hint. Test with errors.Is.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// AdmissionConfig configures the adaptive global concurrency limit that
// sits in front of the per-tenant quotas. Zero fields take the defaults
// below.
type AdmissionConfig struct {
	// InitialLimit is the concurrency limit the AIMD controller starts
	// from (default DefaultInitialLimit).
	InitialLimit int
	// MinLimit / MaxLimit bound the adaptive limit (defaults 1 and
	// DefaultMaxLimit).
	MinLimit, MaxLimit int
	// Queue is the bounded wait-queue capacity; requests arriving with
	// the limit saturated wait here (FIFO) until a slot frees or their
	// deadline expires, and are shed with ErrOverloaded once the queue
	// is full. 0 means DefaultQueue; negative disables queueing.
	Queue int
	// Target is the latency target of the AIMD controller, measured
	// from request arrival (queue wait included): completions under it
	// grow the limit additively, completions over it shrink it
	// multiplicatively (default DefaultLatencyTarget). Counting queue
	// wait is deliberate — a growing queue is itself the proof that the
	// current limit exceeds what the machine sustains, even when every
	// admitted request (cache hits) individually stays fast.
	Target time.Duration
	// DecreaseFactor is the multiplicative backoff applied to the limit
	// on an over-target or overload-signalling completion (default
	// DefaultDecreaseFactor; clamped to (0, 1)).
	DecreaseFactor float64
	// Cooldown spaces multiplicative decreases so one burst of slow
	// completions costs one backoff, not a collapse to MinLimit
	// (default: Target).
	Cooldown time.Duration
}

// Admission defaults.
const (
	DefaultInitialLimit   = 16
	DefaultMaxLimit       = 1024
	DefaultQueue          = 128
	DefaultLatencyTarget  = 100 * time.Millisecond
	DefaultDecreaseFactor = 0.7
)

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.InitialLimit < 1 {
		c.InitialLimit = DefaultInitialLimit
	}
	if c.MinLimit < 1 {
		c.MinLimit = 1
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = DefaultMaxLimit
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.Queue == 0 {
		c.Queue = DefaultQueue
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Target <= 0 {
		c.Target = DefaultLatencyTarget
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = DefaultDecreaseFactor
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Target
	}
	return c
}

// admission is the AIMD global concurrency limiter: at most limit
// requests are planning at once; excess requests wait in a bounded FIFO
// queue and are shed with ErrOverloaded when it overflows. Every
// completed request reports its latency, steering the limit toward the
// highest concurrency the observed plan latency sustains:
//
//   - completion under Target  -> limit += 1/limit  (one step per
//     limit-many good completions, the classic additive increase)
//   - completion over Target, or one carrying an overload signal
//     (deadline blown, chaos stall) -> limit *= DecreaseFactor, at most
//     once per Cooldown.
//
// A nil *admission admits everything (admission control disabled).
type admission struct {
	cfg AdmissionConfig

	mu           sync.Mutex
	limit        float64
	inflight     int
	queue        []*waiter // FIFO; granted waiters are removed from the head
	lastDecrease time.Time
	shed         uint64
	now          func() time.Time // injectable clock for tests
}

// waiter is one queued request. grant is closed with inflight already
// incremented on its behalf; abandoned waiters are unlinked by marking
// (the queue slice drops them lazily on the next grant sweep).
type waiter struct {
	grant     chan struct{}
	abandoned bool
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	return &admission{cfg: cfg, limit: float64(cfg.InitialLimit), now: time.Now}
}

// Acquire admits the request (nil), sheds it (ErrOverloaded), or fails
// with the context's error if its deadline expires while queued. Every
// nil return must be paired with exactly one Release.
func (a *admission) Acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.inflight < a.intLimit() {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.cfg.Queue {
		a.shed++
		a.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{grant: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.grant:
			// Granted concurrently with the deadline: keep the slot —
			// the caller observes its dead context immediately and
			// Releases; dropping it here would leak the inflight count.
			a.mu.Unlock()
			return nil
		default:
			w.abandoned = true
			a.mu.Unlock()
			return ctx.Err()
		}
	}
}

// Release returns the request's slot and feeds the AIMD controller:
// latency is the request's total duration from arrival (queue wait
// included), overloaded marks completions that should shrink the limit
// regardless of latency (deadline blown mid-plan, shed-equivalent
// failures).
func (a *admission) Release(latency time.Duration, overloaded bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.inflight--
	if overloaded || latency > a.cfg.Target {
		if now := a.now(); now.Sub(a.lastDecrease) >= a.cfg.Cooldown {
			a.limit = math.Max(float64(a.cfg.MinLimit), a.limit*a.cfg.DecreaseFactor)
			a.lastDecrease = now
		}
	} else {
		a.limit = math.Min(float64(a.cfg.MaxLimit), a.limit+1/a.limit)
	}
	a.grantLocked()
	a.mu.Unlock()
}

// ReleaseNoSample returns the request's slot without feeding the AIMD
// controller — for requests that never reached the planner (quota
// rejections, malformed bodies), whose near-zero latency would otherwise
// pollute the limit upward during an overload of garbage.
func (a *admission) ReleaseNoSample() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.inflight--
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked hands freed slots to queued waiters in FIFO order,
// skipping abandoned ones.
func (a *admission) grantLocked() {
	for a.inflight < a.intLimit() && len(a.queue) > 0 {
		w := a.queue[0]
		a.queue[0] = nil
		a.queue = a.queue[1:]
		if w.abandoned {
			continue
		}
		a.inflight++
		close(w.grant)
	}
}

func (a *admission) intLimit() int {
	l := int(a.limit)
	if l < a.cfg.MinLimit {
		l = a.cfg.MinLimit
	}
	return l
}

// Limit returns the current adaptive concurrency limit.
func (a *admission) Limit() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.intLimit()
}

// QueueDepth returns the number of queued (non-abandoned) requests.
func (a *admission) QueueDepth() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, w := range a.queue {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// Inflight returns the number of admitted, unreleased requests.
func (a *admission) Inflight() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Shed returns the number of requests shed with ErrOverloaded.
func (a *admission) Shed() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// RetryAfter estimates how long a shed client should wait before
// retrying: one latency-target's worth of drain per queued request
// ahead of it, at least a second (the HTTP Retry-After granularity).
func (a *admission) RetryAfter() time.Duration {
	if a == nil {
		return time.Second
	}
	a.mu.Lock()
	depth := len(a.queue)
	limit := a.intLimit()
	a.mu.Unlock()
	if limit < 1 {
		limit = 1
	}
	d := time.Duration(depth/limit+1) * a.cfg.Target
	if d < time.Second {
		d = time.Second
	}
	return d
}
