package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func admitN(t *testing.T, a *admission, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := a.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d/%d: %v", i, n, err)
		}
	}
}

// waitDepth polls until the queue holds want live waiters (enqueueing
// happens on goroutines the test cannot join).
func waitDepth(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.QueueDepth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want %d", a.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionCapQueueAndShed(t *testing.T) {
	a := newAdmission(AdmissionConfig{InitialLimit: 2, MaxLimit: 2, Queue: 1})
	admitN(t, a, 2)

	// Third request queues.
	granted := make(chan error, 1)
	go func() { granted <- a.Acquire(context.Background()) }()
	waitDepth(t, a, 1)

	// Fourth overflows the queue: shed, not blocked.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with full queue: %v, want ErrOverloaded", err)
	}
	if a.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", a.Shed())
	}

	// A release hands the freed slot to the queued waiter.
	a.Release(time.Millisecond, false)
	if err := <-granted; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
}

func TestAdmissionShedImmediatelyWithoutQueue(t *testing.T) {
	a := newAdmission(AdmissionConfig{InitialLimit: 1, MaxLimit: 1, Queue: -1})
	admitN(t, a, 1)
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire over limit: %v, want ErrOverloaded", err)
	}
}

func TestAdmissionAIMD(t *testing.T) {
	a := newAdmission(AdmissionConfig{
		InitialLimit: 10, MinLimit: 1, MaxLimit: 100,
		Target: 100 * time.Millisecond, DecreaseFactor: 0.5, Cooldown: time.Second,
	})
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	// Fast completions grow the limit additively: about limit-many good
	// completions per added slot (limit ~ sqrt(100 + 2n)).
	for i := 0; i < 12; i++ {
		admitN(t, a, 1)
		a.Release(time.Millisecond, false)
	}
	if got := a.Limit(); got != 11 {
		t.Fatalf("limit after 12 fast completions = %d, want 11", got)
	}

	// One over-target completion takes half (of ~11.1) away.
	admitN(t, a, 1)
	a.Release(500*time.Millisecond, false)
	if got := a.Limit(); got != 5 {
		t.Fatalf("limit after slow completion = %d, want 5", got)
	}

	// A second slow completion inside the cooldown does not compound.
	admitN(t, a, 1)
	a.Release(500*time.Millisecond, false)
	if got := a.Limit(); got != 5 {
		t.Fatalf("limit decreased twice inside cooldown: %d, want 5", got)
	}

	// After the cooldown, an overload-signalling completion (fast but
	// flagged) halves it again, and never below MinLimit.
	clock = clock.Add(2 * time.Second)
	admitN(t, a, 1)
	a.Release(time.Millisecond, true)
	if got := a.Limit(); got != 2 {
		t.Fatalf("limit after overload signal = %d, want 2", got)
	}
	for i := 0; i < 10; i++ {
		clock = clock.Add(2 * time.Second)
		admitN(t, a, 1)
		a.Release(time.Second, true)
	}
	if got := a.Limit(); got != 1 {
		t.Fatalf("limit = %d, want floor 1", got)
	}
}

func TestAdmissionReleaseNoSampleKeepsLimit(t *testing.T) {
	a := newAdmission(AdmissionConfig{InitialLimit: 4, MaxLimit: 8})
	before := a.Limit()
	for i := 0; i < 100; i++ {
		admitN(t, a, 1)
		a.ReleaseNoSample()
	}
	if got := a.Limit(); got != before {
		t.Fatalf("limit moved %d -> %d on unsampled releases", before, got)
	}
	if a.Inflight() != 0 {
		t.Fatalf("inflight = %d, want 0", a.Inflight())
	}
}

func TestAdmissionAbandonedWaiter(t *testing.T) {
	a := newAdmission(AdmissionConfig{InitialLimit: 1, MaxLimit: 1, Queue: 4})
	admitN(t, a, 1)

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- a.Acquire(ctx) }()
	waitDepth(t, a, 1)
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v, want context.Canceled", err)
	}
	if a.QueueDepth() != 0 {
		t.Fatalf("abandoned waiter still counted: depth %d", a.QueueDepth())
	}

	// The freed slot must not be burned on the abandoned waiter.
	a.Release(time.Millisecond, false)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after abandoned waiter: %v", err)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(AdmissionConfig{InitialLimit: 1, MaxLimit: 1, Queue: 4})
	admitN(t, a, 1)

	first := make(chan error, 1)
	go func() { first <- a.Acquire(context.Background()) }()
	waitDepth(t, a, 1)
	second := make(chan error, 1)
	go func() { second <- a.Acquire(context.Background()) }()
	waitDepth(t, a, 2)

	a.Release(time.Millisecond, false)
	if err := <-first; err != nil {
		t.Fatalf("first waiter: %v", err)
	}
	select {
	case err := <-second:
		t.Fatalf("second waiter granted before first released: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(time.Millisecond, false)
	if err := <-second; err != nil {
		t.Fatalf("second waiter: %v", err)
	}
}

func TestNilAdmissionAdmitsEverything(t *testing.T) {
	var a *admission
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("nil admission rejected: %v", err)
	}
	a.Release(time.Hour, true)
	a.ReleaseNoSample()
	if a.Limit() != 0 || a.QueueDepth() != 0 || a.Inflight() != 0 || a.Shed() != 0 {
		t.Fatal("nil admission reported non-zero state")
	}
	if a.RetryAfter() < time.Second {
		t.Fatal("nil RetryAfter under a second")
	}
}
