package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"mtask/internal/core"
	"mtask/internal/fault"
	"mtask/internal/plan"
)

// seqKey carries the request's chaos sequence number through the context
// so every injection point of one request keys off the same number.
type seqKey struct{}

func withChaosSeq(ctx context.Context, seq uint64) context.Context {
	return context.WithValue(ctx, seqKey{}, seq)
}

func chaosSeq(ctx context.Context) uint64 {
	seq, _ := ctx.Value(seqKey{}).(uint64)
	return seq
}

// chaosColdPlanHook adapts the serve injector to plan.WithColdPlanHook:
// it fires inside the singleflight leader, so an injected stall is a
// slow (or leaked) leader and an injected panic is a leader crash —
// exactly the failure modes the coalescing path must survive.
func (s *Server) chaosColdPlanHook(ctx context.Context) error {
	f := s.chaos.Decide(fault.PointColdPlan, chaosSeq(ctx))
	if f == nil {
		return nil
	}
	s.rec.Counter("serve.chaos.injected").Add(1)
	s.health.Stress()
	switch f.Kind {
	case fault.Delay:
		fault.Sleep(ctx, f.Delay)
		return nil
	case fault.Panic:
		panic(fmt.Sprintf("chaos: injected cold-plan panic (seq %d)", chaosSeq(ctx)))
	case fault.Error, fault.CoreLoss:
		return f.Err
	}
	return nil
}

// chaosCache wraps the planner's schedule cache with injectable shard
// stalls. Stalls are uncancelable (plan.Cache has no context), so they
// model a mutex held too long — the admission layer and deadlines above
// must absorb them. Only lookups and publishes stall; stats and purges
// stay clean. Accesses draw from their own sequence counter (the Cache
// interface carries no request identity), still fully determined by the
// seed and the access ordinal.
type chaosCache struct {
	plan.Cache
	inj *fault.ServeInjector
	seq atomic.Uint64
}

func (c *chaosCache) stall(point string) {
	if f := c.inj.Decide(point, c.seq.Add(1)); f != nil && f.Kind == fault.Delay {
		fault.Sleep(context.Background(), f.Delay)
	}
}

func (c *chaosCache) Get(k plan.Key) (*core.Mapping, bool) {
	c.stall(fault.PointCacheGet)
	return c.Cache.Get(k)
}

func (c *chaosCache) Add(k plan.Key, mp *core.Mapping) {
	c.stall(fault.PointCacheAdd)
	c.Cache.Add(k, mp)
}
