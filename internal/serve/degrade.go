package serve

import (
	"container/list"
	"sync"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/graph"
	"mtask/internal/plan"
)

// familyKey identifies a fingerprint family: every planning request for
// the same graph, machine, strategy and core count belongs to one
// family, whatever its scheduler knobs (group bounds, forced groups,
// model tweaks). Any member's mapping is a structurally valid — if
// possibly stale or differently tuned — answer for any other member,
// which is exactly the substitution graceful degradation makes when a
// cold plan blows its budget.
type familyKey struct {
	graph, machine uint64
	strategy       string
	p              int
}

// familyOf computes the request's fingerprint family. strategy is the
// resolved strategy name (the planner default when the request names
// none).
func familyOf(g *graph.Graph, m *arch.Machine, strategy string, cores int) familyKey {
	p := cores
	if p == 0 {
		p = m.TotalCores()
	}
	if strategy == "" {
		strategy = core.Consecutive{}.Name()
	}
	return familyKey{
		graph:    plan.GraphFingerprint(g),
		machine:  plan.MachineFingerprint(m),
		strategy: strategy,
		p:        p,
	}
}

// DefaultFallbackCapacity is the fallback store's size when
// WithDegraded does not set one.
const DefaultFallbackCapacity = 256

// fallbackStore retains the most recent successful mapping per
// fingerprint family — including mappings whose exact cache Key has long
// been evicted from the sharded LRU. It is the stale-but-valid reservoir
// the degraded path serves from; lookups are stat-neutral by
// construction (the store keeps no traffic counters), mirroring
// plan.ShardedCache.Peek.
type fallbackStore struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently stored
	entries  map[familyKey]*list.Element
}

type fallbackEntry struct {
	key familyKey
	mp  *core.Mapping
}

func newFallbackStore(capacity int) *fallbackStore {
	if capacity < 1 {
		capacity = DefaultFallbackCapacity
	}
	return &fallbackStore{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[familyKey]*list.Element),
	}
}

// Store records the family's latest known-good mapping.
func (s *fallbackStore) Store(k familyKey, mp *core.Mapping) {
	if s == nil || mp == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*fallbackEntry).mp = mp
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&fallbackEntry{key: k, mp: mp})
	for s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*fallbackEntry).key)
	}
}

// Peek returns the family's stale mapping without any recency or stat
// side effects.
func (s *fallbackStore) Peek(k familyKey) (*core.Mapping, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	return el.Value.(*fallbackEntry).mp, true
}

// Len returns the number of retained families.
func (s *fallbackStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
