package serve

import (
	"sync/atomic"
	"time"
)

// Health states of the readiness probe. The state machine (documented in
// docs/SERVING.md) is:
//
//	      stress observed                window elapses
//	ok ───────────────────────▶ degraded ───────────────▶ ok
//	 │                              │
//	 │ SetDraining(true)            │ SetDraining(true)
//	 ▼                              ▼
//	               draining  (terminal until SetDraining(false))
//
// "Stress" is any of: a shed request, a degraded (stale-plan) response, a
// recovered handler panic, or an injected chaos fault. Degraded is a
// self-healing state — it reports that the server is deliberately
// trading answer quality or availability for survival, not that it is
// dead; liveness stays "ok" throughout. Draining is entered by the
// daemon on SIGTERM before the listener shuts down, so load balancers
// stop routing new work while in-flight requests finish.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthDraining = "draining"
)

// DefaultDegradedWindow is how long after the last stress signal the
// readiness probe keeps reporting degraded.
const DefaultDegradedWindow = 5 * time.Second

// health tracks the server's readiness state. All methods are safe for
// concurrent use and wait-free (one atomic each).
type health struct {
	draining   atomic.Bool
	lastStress atomic.Int64 // unix nanos of the last stress signal; 0 = never
	window     time.Duration
	now        func() time.Time // injectable clock for tests
}

func newHealth(window time.Duration) *health {
	if window <= 0 {
		window = DefaultDegradedWindow
	}
	return &health{window: window, now: time.Now}
}

// Stress records a stress signal (shed, degraded response, panic,
// injected fault); readiness reports degraded until the window elapses.
func (h *health) Stress() {
	h.lastStress.Store(h.now().UnixNano())
}

// SetDraining flips the draining state; while draining, readiness fails
// so load balancers stop routing here.
func (h *health) SetDraining(v bool) {
	h.draining.Store(v)
}

// Readiness returns the current readiness state.
func (h *health) Readiness() string {
	if h.draining.Load() {
		return HealthDraining
	}
	if last := h.lastStress.Load(); last != 0 &&
		h.now().Sub(time.Unix(0, last)) < h.window {
		return HealthDegraded
	}
	return HealthOK
}
