package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/fault"
	"mtask/internal/graph"
	"mtask/internal/plan"
)

func postWithDeadline(h http.Handler, path string, body []byte, deadline string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(string(body)))
	if deadline != "" {
		req.Header.Set(DeadlineHeader, deadline)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func errorCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatalf("non-JSON error body %q: %v", w.Body, err)
	}
	return er.Code
}

// blockingPlanner returns a server planner whose cold plans park until
// release is closed (or their context dies) — a controllable stand-in
// for a slow group-count search.
func blockingPlanner(release <-chan struct{}) *plan.Planner {
	return plan.NewWithCache(plan.NewCache(plan.DefaultCacheSize),
		plan.WithColdPlanHook(func(ctx context.Context) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}))
}

func TestDeadlineHeaderHappyPath(t *testing.T) {
	s := New()
	w := postWithDeadline(s.Handler(), "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "30s")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
}

func TestInvalidDeadlineHeader(t *testing.T) {
	s := New()
	h := s.Handler()
	for _, bad := range []string{"soon", "-5s", "0"} {
		w := postWithDeadline(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{}), bad)
		if w.Code != http.StatusBadRequest || errorCode(t, w) != "invalid_argument" {
			t.Fatalf("deadline %q: status %d code %q, want 400 invalid_argument",
				bad, w.Code, errorCode(t, w))
		}
	}
}

// TestDeadlineExpiredDuringDecode pins the satellite fix: a deadline
// expiring while the body is still being read must map to 504, not to
// the generic 400/500 decode path.
func TestDeadlineExpiredDuringDecode(t *testing.T) {
	s := New()
	w := postWithDeadline(s.Handler(), "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "1ns")
	if w.Code != http.StatusGatewayTimeout || errorCode(t, w) != "deadline_exceeded" {
		t.Fatalf("status %d code %q, want 504 deadline_exceeded (%s)", w.Code, errorCode(t, w), w.Body)
	}
	if m := s.Metrics(); m["serve.deadline_exceeded"] != 1 {
		t.Fatalf("serve.deadline_exceeded = %d, want 1", m["serve.deadline_exceeded"])
	}
}

// TestPlanDeadlineReturns504 injects a scripted slow cold plan and a
// shorter request deadline: the expiry must surface as 504 through the
// planner's error wrapping.
func TestPlanDeadlineReturns504(t *testing.T) {
	s := New(WithChaos(&fault.ServeInjector{Seed: 1, Script: []fault.ServeScript{
		{Point: fault.PointColdPlan, Seq: 1, Kind: fault.Delay, Delay: 2 * time.Second},
	}}))
	w := postWithDeadline(s.Handler(), "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "30ms")
	if w.Code != http.StatusGatewayTimeout || errorCode(t, w) != "deadline_exceeded" {
		t.Fatalf("status %d code %q, want 504 deadline_exceeded (%s)", w.Code, errorCode(t, w), w.Body)
	}
	m := s.Metrics()
	if m["serve.deadline_exceeded"] != 1 || m["serve.chaos.injected"] != 1 {
		t.Fatalf("metrics: deadline_exceeded=%d chaos.injected=%d",
			m["serve.deadline_exceeded"], m["serve.chaos.injected"])
	}
}

func TestShedReturns503WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	s := New(WithPlanner(blockingPlanner(release)),
		WithAdmission(AdmissionConfig{InitialLimit: 1, MaxLimit: 1, Queue: -1}))
	h := s.Handler()
	body := testRequestBody(t, 2, PlanOptions{})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- post(h, "/v1/plan", body, "") }()
	waitInflight(t, s, 1)

	w := post(h, "/v1/plan", body, "")
	if w.Code != http.StatusServiceUnavailable || errorCode(t, w) != "overloaded" {
		t.Fatalf("status %d code %q, want 503 overloaded (%s)", w.Code, errorCode(t, w), w.Body)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer seconds >= 1", w.Header().Get("Retry-After"))
	}
	if m := s.Metrics(); m["serve.shed"] != 1 {
		t.Fatalf("serve.shed = %d, want 1", m["serve.shed"])
	}
	if got := s.Readiness(); got != HealthDegraded {
		t.Fatalf("readiness after shed = %q, want degraded", got)
	}

	close(release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("admitted request: status %d: %s", w.Code, w.Body)
	}
}

// waitInflight polls until n requests hold admission slots.
func waitInflight(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Inflight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("inflight %d, want %d", s.adm.Inflight(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueuedRequestHonorsDeadline parks a request in the admission queue
// until its propagated deadline expires: it must come back 504, never
// hang, and never steal the slot later.
func TestQueuedRequestHonorsDeadline(t *testing.T) {
	release := make(chan struct{})
	s := New(WithPlanner(blockingPlanner(release)),
		WithAdmission(AdmissionConfig{InitialLimit: 1, MaxLimit: 1, Queue: 4}))
	h := s.Handler()
	body := testRequestBody(t, 2, PlanOptions{})

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- post(h, "/v1/plan", body, "") }()
	waitInflight(t, s, 1)

	start := time.Now()
	w := postWithDeadline(h, "/v1/plan", body, "50ms")
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("queued request hung %v past its 50ms deadline", waited)
	}
	if w.Code != http.StatusGatewayTimeout || errorCode(t, w) != "deadline_exceeded" {
		t.Fatalf("status %d code %q, want 504 deadline_exceeded (%s)", w.Code, errorCode(t, w), w.Body)
	}

	close(release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("admitted request: status %d: %s", w.Code, w.Body)
	}
}

// TestDegradedServing: once a family has a known-good mapping, a cold
// plan blowing its budget is answered by the stale mapping flagged
// degraded:true instead of timing out.
func TestDegradedServing(t *testing.T) {
	s := New(
		WithDegraded(20*time.Millisecond, 0),
		WithChaos(&fault.ServeInjector{Seed: 7, Script: []fault.ServeScript{
			// Request #2's cold plan stalls far past the degrade budget.
			{Point: fault.PointColdPlan, Seq: 2, Kind: fault.Delay, Delay: 2 * time.Second},
		}}))
	h := s.Handler()

	// Request 1 warms the family (group-count search, no faults).
	w := post(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "")
	if w.Code != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", w.Code, w.Body)
	}
	var warm PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Degraded {
		t.Fatal("warm request reported degraded")
	}

	// Request 2: same family (same graph/machine/strategy/cores), new
	// cache key (forced group count), stalled cold plan.
	start := time.Now()
	w = post(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{ForceGroups: 2}), "")
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("degraded response took %v, budget was 20ms", elapsed)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", w.Code, w.Body)
	}
	var deg PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatalf("response not flagged degraded: %+v", deg)
	}
	if deg.Makespan != warm.Makespan {
		t.Fatalf("degraded makespan %v != family's stale %v", deg.Makespan, warm.Makespan)
	}
	m := s.Metrics()
	if m["serve.degraded"] != 1 {
		t.Fatalf("serve.degraded = %d, want 1", m["serve.degraded"])
	}
	if m["serve.fallback.len"] != 1 {
		t.Fatalf("serve.fallback.len = %d, want 1", m["serve.fallback.len"])
	}
	if got := s.Readiness(); got != HealthDegraded {
		t.Fatalf("readiness after degraded serve = %q, want degraded", got)
	}
}

// TestDegradedDisabledWaitsOut: without a fallback for the family the
// degrade path keeps waiting (and the deadline still rules).
func TestDegradedNoFallbackWaits(t *testing.T) {
	s := New(
		WithDegraded(5*time.Millisecond, 0),
		WithChaos(&fault.ServeInjector{Seed: 7, Script: []fault.ServeScript{
			{Point: fault.PointColdPlan, Seq: 1, Kind: fault.Delay, Delay: 60 * time.Millisecond},
		}}))
	// First ever request: no fallback exists; the stalled plan must
	// complete normally after its 60ms injected delay.
	w := post(s.Handler(), "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("response flagged degraded with no fallback to serve")
	}
}

func TestHandlerPanicRecovery(t *testing.T) {
	s := New(WithChaos(&fault.ServeInjector{Seed: 3, Script: []fault.ServeScript{
		{Point: fault.PointHandler, Seq: 1, Kind: fault.Panic},
	}}))
	h := s.Handler()

	w := post(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "")
	if w.Code != http.StatusInternalServerError || errorCode(t, w) != "internal" {
		t.Fatalf("status %d code %q, want 500 internal (%s)", w.Code, errorCode(t, w), w.Body)
	}
	if m := s.Metrics(); m["serve.panics"] != 1 {
		t.Fatalf("serve.panics = %d, want 1", m["serve.panics"])
	}
	// The process degrades, it does not die: liveness stays ok,
	// readiness reports degraded, and the next request is served.
	if w := get(h, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz after panic: %d %q", w.Code, w.Body)
	}
	if w := get(h, "/readyz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), HealthDegraded) {
		t.Fatalf("readyz after panic: %d %q, want 200 degraded", w.Code, w.Body)
	}
	if w := post(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{}), ""); w.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d: %s", w.Code, w.Body)
	}
}

func TestReadyzStateMachine(t *testing.T) {
	s := New(WithHealthWindow(50 * time.Millisecond))
	h := s.Handler()

	if w := get(h, "/readyz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), HealthOK) {
		t.Fatalf("fresh readyz: %d %q, want 200 ok", w.Code, w.Body)
	}

	s.health.Stress()
	if w := get(h, "/readyz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), HealthDegraded) {
		t.Fatalf("stressed readyz: %d %q, want 200 degraded", w.Code, w.Body)
	}

	// Degraded self-heals once the window elapses.
	time.Sleep(70 * time.Millisecond)
	if w := get(h, "/readyz"); !strings.Contains(w.Body.String(), HealthOK) {
		t.Fatalf("readyz after window: %q, want ok", w.Body)
	}

	// Draining wins over everything and flips readiness to 503 while
	// liveness stays up.
	s.SetDraining(true)
	s.health.Stress()
	if w := get(h, "/readyz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), HealthDraining) {
		t.Fatalf("draining readyz: %d %q, want 503 draining", w.Code, w.Body)
	}
	if w := get(h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", w.Code)
	}
	s.SetDraining(false)
}

// TestStatusOf is the satellite's table-driven sweep over every branch
// of the error-code mapping, including the planner's double-wrapped
// context causes.
func TestStatusOf(t *testing.T) {
	for _, tc := range []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"invalid machine", fmt.Errorf("x: %w", arch.ErrInvalidMachine), 400, "invalid_argument"},
		{"cyclic graph", fmt.Errorf("x: %w", graph.ErrCyclicGraph), 400, "invalid_argument"},
		{"no cores", fmt.Errorf("x: %w", core.ErrNoCores), 400, "invalid_argument"},
		{"quota", fmt.Errorf("tenant a: %w", ErrQuotaExceeded), 429, "quota_exceeded"},
		{"overloaded", fmt.Errorf("x: %w", ErrOverloaded), 503, "overloaded"},
		{"bare deadline", context.DeadlineExceeded, 504, "deadline_exceeded"},
		{"planner-wrapped deadline",
			fmt.Errorf("planning %q: %w (%w)", "g", core.ErrCanceled, context.DeadlineExceeded),
			504, "deadline_exceeded"},
		{"bare canceled", context.Canceled, 499, "canceled"},
		{"planner-wrapped canceled",
			fmt.Errorf("planning %q: %w (%w)", "g", core.ErrCanceled, context.Canceled),
			499, "canceled"},
		{"sentinel canceled only", fmt.Errorf("x: %w", core.ErrCanceled), 499, "canceled"},
		{"plan panic", fmt.Errorf("planning %q: %w: boom", "g", plan.ErrPlanPanic), 500, "internal"},
		{"generic", errors.New("kaboom"), 500, "internal"},
	} {
		status, code := statusOf(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("%s: statusOf(%v) = %d %q, want %d %q",
				tc.name, tc.err, status, code, tc.status, tc.code)
		}
	}
}

func TestFamilyKey(t *testing.T) {
	g := testGraph(t, 3)
	m := arch.CHiC().SubsetCores(16)
	base := familyOf(g, m, "", 0)
	if base.p != 16 || base.strategy != (core.Consecutive{}).Name() {
		t.Fatalf("defaults not applied: %+v", base)
	}
	if familyOf(g, m, "", 0) != base {
		t.Fatal("familyOf not deterministic")
	}
	if familyOf(g, m, "scattered", 0) == base {
		t.Fatal("strategy not part of the family")
	}
	if familyOf(g, m, "", 8) == base {
		t.Fatal("core count not part of the family")
	}
	if familyOf(testGraph(t, 4), m, "", 0) == base {
		t.Fatal("graph fingerprint not part of the family")
	}
}

func testGraph(t *testing.T, steps int) *graph.Graph {
	t.Helper()
	var req PlanRequest
	if err := json.Unmarshal(testRequestBody(t, steps, PlanOptions{}), &req); err != nil {
		t.Fatal(err)
	}
	return req.Graph
}
