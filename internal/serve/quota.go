package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuotaExceeded is the sentinel wrapped by every admission rejection;
// the HTTP layer maps it to 429 Too Many Requests. Test with errors.Is.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// Quotas is the admission layer of the plan server: one token bucket per
// tenant, refilled at Rate tokens per second up to Burst. A request is
// admitted when its tenant's bucket holds at least one token; otherwise
// it is rejected with an error wrapping ErrQuotaExceeded — the server
// never queues inadmissible work, which keeps one greedy tenant from
// growing every other tenant's latency (the hierarchical-scheduler
// admission argument of He et al.).
//
// Buckets are created lazily on first use. A Rate <= 0 disables admission
// control entirely (every request is admitted).
type Quotas struct {
	rate  float64 // tokens per second per tenant
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas returns an admission table granting each tenant rate
// requests per second with bursts up to burst. burst < 1 is raised to 1
// (a bucket that can never hold a whole token would reject everything).
func NewQuotas(rate float64, burst int) *Quotas {
	if burst < 1 {
		burst = 1
	}
	return &Quotas{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Unlimited reports whether admission control is disabled.
func (q *Quotas) Unlimited() bool { return q == nil || q.rate <= 0 }

// Admit spends one token of the tenant's bucket, or returns an error
// wrapping ErrQuotaExceeded naming the tenant when the bucket is empty.
func (q *Quotas) Admit(tenant string) error {
	if q.Unlimited() {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	now := q.now()
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return fmt.Errorf("tenant %q: %w (rate %g req/s, burst %g)",
			tenant, ErrQuotaExceeded, q.rate, q.burst)
	}
	b.tokens--
	return nil
}

// Tenants returns the number of tenants with a materialized bucket.
func (q *Quotas) Tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
