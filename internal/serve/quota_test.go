package serve

import (
	"errors"
	"testing"
	"time"
)

func TestQuotaBurstThenRefill(t *testing.T) {
	q := NewQuotas(10, 3) // 10 req/s, burst 3
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if err := q.Admit("a"); err != nil {
			t.Fatalf("burst request %d rejected: %v", i, err)
		}
	}
	if err := q.Admit("a"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-burst request: got %v, want ErrQuotaExceeded", err)
	}

	// 100ms refills exactly one token at 10 req/s.
	now = now.Add(100 * time.Millisecond)
	if err := q.Admit("a"); err != nil {
		t.Fatalf("refilled request rejected: %v", err)
	}
	if err := q.Admit("a"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second request after single refill: got %v, want ErrQuotaExceeded", err)
	}

	// Refill caps at the burst.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if err := q.Admit("a"); err != nil {
			t.Fatalf("post-idle request %d rejected: %v", i, err)
		}
	}
	if err := q.Admit("a"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("burst not capped after idle period")
	}
}

func TestQuotaTenantsIsolated(t *testing.T) {
	q := NewQuotas(1, 1)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	if err := q.Admit("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit("a"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("tenant a's second request admitted")
	}
	// Tenant b has its own bucket, untouched by a's exhaustion.
	if err := q.Admit("b"); err != nil {
		t.Fatalf("tenant b rejected by tenant a's exhaustion: %v", err)
	}
	if q.Tenants() != 2 {
		t.Fatalf("Tenants() = %d, want 2", q.Tenants())
	}
}

func TestQuotaUnlimited(t *testing.T) {
	for _, q := range []*Quotas{nil, NewQuotas(0, 5), NewQuotas(-1, 5)} {
		if !q.Unlimited() {
			t.Fatalf("%+v not unlimited", q)
		}
		for i := 0; i < 100; i++ {
			if err := q.Admit("x"); err != nil {
				t.Fatalf("unlimited quotas rejected: %v", err)
			}
		}
	}
}
