// Package serve is the multi-tenant planning-as-a-service front door: an
// HTTP server exposing the concurrent planner engine (internal/plan) and
// the deterministic cluster simulator (internal/cluster) to many
// concurrent clients.
//
// The request path is engineered for sustained concurrent load, in three
// stages:
//
//  1. Admission — per-tenant token-bucket quotas (Quotas) reject excess
//     traffic with 429 before it touches the planner, so one tenant
//     cannot starve the rest.
//  2. Sharded schedule cache — admitted requests are served from the
//     planner's fingerprint-sharded LRU (plan.ShardedCache); concurrent
//     hits on different fingerprints never contend on one mutex.
//  3. Coalescing — concurrent cold requests for the same fingerprint are
//     collapsed by the planner's singleflight into one group-count
//     search; followers adopt the leader's mapping.
//
// Every stage publishes counters into an obs.Recorder (serve.requests,
// serve.rejected, serve.cache_hits, serve.coalesced, serve.plans_cold,
// per-shard hit/miss gauges), exposed in Prometheus-friendly text form on
// GET /metricz.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/plan"
)

// TenantHeader names the request header carrying the tenant identity.
// Requests without it are accounted to DefaultTenant.
const TenantHeader = "X-Mtask-Tenant"

// DefaultTenant is the tenant of requests without a TenantHeader.
const DefaultTenant = "default"

// DefaultMaxBodyBytes bounds request bodies (graph + machine JSON).
const DefaultMaxBodyBytes = 64 << 20

// Server is the planning service. Construct with New; serve its
// Handler() with net/http. A Server is safe for concurrent use.
type Server struct {
	planner *plan.Planner
	sharded *plan.ShardedCache // non-nil when the cache is ours / sharded
	quotas  *Quotas
	rec     *obs.Recorder
	maxBody int64

	capacity, shards int
}

// Option configures a Server.
type Option func(*Server)

// WithQuota grants each tenant rate plan/simulate requests per second
// with bursts up to burst; rate <= 0 disables admission control (the
// default).
func WithQuota(rate float64, burst int) Option {
	return func(s *Server) { s.quotas = NewQuotas(rate, burst) }
}

// WithCache sizes the schedule cache: total capacity mappings over the
// given number of fingerprint shards (0 picks the plan package defaults).
func WithCache(capacity, shards int) Option {
	return func(s *Server) { s.capacity, s.shards = capacity, shards }
}

// WithPlanner serves requests through the given planner instead of a
// private one (e.g. to share a cache with in-process callers). Overrides
// WithCache.
func WithPlanner(p *plan.Planner) Option {
	return func(s *Server) { s.planner = p }
}

// WithRecorder publishes the server's counters into rec instead of a
// private recorder.
func WithRecorder(rec *obs.Recorder) Option {
	return func(s *Server) { s.rec = rec }
}

// WithMaxBodyBytes bounds request bodies (default DefaultMaxBodyBytes).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// New returns a Server with a private planner backed by a sharded
// schedule cache, no quotas, and a private metrics recorder, overridden
// by the given options.
func New(opts ...Option) *Server {
	s := &Server{maxBody: DefaultMaxBodyBytes}
	for _, opt := range opts {
		opt(s)
	}
	if s.planner == nil {
		capacity := s.capacity
		if capacity < 1 {
			capacity = plan.DefaultCacheSize
		}
		shards := s.shards
		if shards < 1 {
			shards = plan.DefaultShards
		}
		s.sharded = plan.NewShardedCache(capacity, shards)
		s.planner = plan.NewWithCache(s.sharded)
	} else if c, ok := s.planner.Cache().(*plan.ShardedCache); ok {
		s.sharded = c
	}
	if s.rec == nil {
		s.rec = obs.New(0, obs.WithName("mtaskd"))
	}
	return s
}

// Planner returns the planner serving this server's requests.
func (s *Server) Planner() *plan.Planner { return s.planner }

// Recorder returns the server's metrics recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Handler returns the service's HTTP handler:
//
//	POST /v1/plan      graph+machine+options -> mapping summary
//	POST /v1/simulate  graph+machine+options -> simulated timing
//	GET  /healthz      liveness probe
//	GET  /metricz      counters in "name value" text form
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	return mux
}

// Metrics snapshots the server's counters, including the per-shard cache
// gauges (serve.cache.shard<i>.hits/misses/len) when the cache is
// sharded.
func (s *Server) Metrics() map[string]int64 {
	s.publishCacheMetrics()
	return s.rec.Metrics()
}

func (s *Server) publishCacheMetrics() {
	hits, misses := s.planner.Cache().Stats()
	s.rec.SetMetric("serve.cache.hits", int64(hits))
	s.rec.SetMetric("serve.cache.misses", int64(misses))
	s.rec.SetMetric("serve.cache.len", int64(s.planner.Cache().Len()))
	s.rec.SetMetric("serve.tenants", int64(s.quotas.Tenants()))
	if s.sharded == nil {
		return
	}
	for i, st := range s.sharded.ShardStats() {
		s.rec.SetMetric(fmt.Sprintf("serve.cache.shard%03d.hits", i), int64(st.Hits))
		s.rec.SetMetric(fmt.Sprintf("serve.cache.shard%03d.misses", i), int64(st.Misses))
		s.rec.SetMetric(fmt.Sprintf("serve.cache.shard%03d.len", i), int64(st.Len))
	}
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	s.publishCacheMetrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.rec.MetricsString())
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// admitAndDecode runs the shared front half of the plan and simulate
// endpoints: admission, body decoding and request validation. It writes
// the error response itself and returns nil when the request was denied.
func (s *Server) admitAndDecode(w http.ResponseWriter, r *http.Request) *PlanRequest {
	s.rec.Counter("serve.requests").Add(1)
	if err := s.quotas.Admit(tenantOf(r)); err != nil {
		s.rec.Counter("serve.rejected").Add(1)
		writeError(w, http.StatusTooManyRequests, "quota_exceeded", err)
		return nil
	}
	var req PlanRequest
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("decoding request: %w", err))
		return nil
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err)
		return nil
	}
	return &req
}

// plan runs the planner for an admitted request, counting how it was
// served. It writes the error response itself and returns nil on failure.
func (s *Server) plan(w http.ResponseWriter, r *http.Request, req *PlanRequest) (*core.Mapping, plan.Info) {
	opts, err := req.planOpts()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err)
		return nil, plan.Info{}
	}
	var info plan.Info
	opts = append(opts, plan.WithInfo(&info))
	mp, err := s.planner.Plan(r.Context(), req.Graph, req.Machine, opts...)
	if err != nil {
		s.writePlanError(w, err)
		return nil, info
	}
	switch {
	case info.CacheHit:
		s.rec.Counter("serve.cache_hits").Add(1)
	case info.Coalesced:
		s.rec.Counter("serve.coalesced").Add(1)
	case info.Cold:
		s.rec.Counter("serve.plans_cold").Add(1)
	}
	return mp, info
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	req := s.admitAndDecode(w, r)
	if req == nil {
		return
	}
	mp, info := s.plan(w, r, req)
	if mp == nil {
		return
	}
	writeJSON(w, http.StatusOK, buildPlanResponse(mp, info))
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req := s.admitAndDecode(w, r)
	if req == nil {
		return
	}
	mp, info := s.plan(w, r, req)
	if mp == nil {
		return
	}
	model := (&cost.Model{Machine: mp.Machine}).WithMemo()
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	res, err := cluster.SimulateCtx(r.Context(), model, prog)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &SimulateResponse{
		Graph:      mp.Schedule.Source.Name,
		Machine:    mp.Machine.Name,
		Makespan:   res.Makespan,
		CompTime:   res.CompTime,
		CommTime:   res.CommTime,
		RedistTime: res.RedistTime,
		Cached:     info.CacheHit,
		Coalesced:  info.Coalesced,
	})
}

// writePlanError maps planning-pipeline errors to HTTP statuses: invalid
// inputs are the client's fault (400), cancellation is the client going
// away (499, nginx-style), everything else is 500.
func (s *Server) writePlanError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, arch.ErrInvalidMachine),
		errors.Is(err, graph.ErrCyclicGraph),
		errors.Is(err, core.ErrNoCores):
		writeError(w, http.StatusBadRequest, "invalid_argument", err)
	case errors.Is(err, core.ErrCanceled):
		writeError(w, 499, "canceled", err)
	default:
		s.rec.Counter("serve.errors").Add(1)
		writeError(w, http.StatusInternalServerError, "internal", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, &ErrorResponse{Error: err.Error(), Code: code})
}
