// Package serve is the multi-tenant planning-as-a-service front door: an
// HTTP server exposing the concurrent planner engine (internal/plan) and
// the deterministic cluster simulator (internal/cluster) to many
// concurrent clients, engineered to survive overload and injected
// failure.
//
// The request path is staged so each layer protects the ones below it:
//
//  1. Deadline propagation — a client deadline (X-Request-Deadline, a Go
//     duration) bounds the request context end to end: queueing, decode,
//     planning and simulation all stop the moment it expires, so
//     abandoned requests stop burning cores. Expiry maps to 504, a
//     client going away to 499.
//  2. Global admission — an adaptive concurrency limit (AIMD on observed
//     plan latency) with a small bounded FIFO wait queue; when the queue
//     overflows, requests are shed with 503 + Retry-After instead of
//     piling onto the planner.
//  3. Per-tenant quotas — token buckets reject excess traffic with 429
//     before it is decoded, so one tenant cannot starve the rest.
//  4. Sharded schedule cache — admitted requests are served from the
//     planner's fingerprint-sharded LRU (plan.ShardedCache).
//  5. Coalescing — concurrent cold requests for the same fingerprint
//     collapse into one group-count search (singleflight); crashed or
//     canceled leaders are re-elected, never adopted.
//  6. Graceful degradation — when a cold plan blows its budget and a
//     stale-but-valid mapping of the same fingerprint family is on
//     hand, it is served flagged degraded:true instead of timing out.
//
// Liveness (GET /healthz) and readiness (GET /readyz) are split:
// readiness reports "degraded" while the server is shedding, serving
// stale plans or absorbing injected faults, and "draining" once shutdown
// began; liveness stays "ok" throughout — the server degrades, it does
// not die. A deterministic chaos injector (fault.ServeInjector, see
// WithChaos) can strike every stage: slow and leaked singleflight
// leaders, cache-shard stalls, cold-plan errors/panics and handler
// panics, all seeded and reproducible.
//
// Every stage publishes counters into an obs.Recorder (serve.requests,
// serve.shed, serve.rejected, serve.deadline_exceeded, serve.degraded,
// serve.panics, serve.cache_hits, serve.coalesced, serve.plans_cold,
// serve.queue_depth and admission gauges, per-shard cache traffic),
// exposed in Prometheus-friendly text form on GET /metricz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mtask/internal/arch"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/fault"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/plan"
)

// TenantHeader names the request header carrying the tenant identity.
// Requests without it are accounted to DefaultTenant.
const TenantHeader = "X-Mtask-Tenant"

// DefaultTenant is the tenant of requests without a TenantHeader.
const DefaultTenant = "default"

// DeadlineHeader names the request header carrying the client's
// end-to-end budget as a Go duration (e.g. "250ms", "2s"). The server
// derives the request context's deadline from it (clamped to
// WithMaxDeadline) and propagates it through queueing, decode, planning
// and simulation.
const DeadlineHeader = "X-Request-Deadline"

// DefaultMaxBodyBytes bounds request bodies (graph + machine JSON).
const DefaultMaxBodyBytes = 64 << 20

// DefaultMaxDeadline caps client-requested deadlines.
const DefaultMaxDeadline = 5 * time.Minute

// Server is the planning service. Construct with New; serve its
// Handler() with net/http. A Server is safe for concurrent use.
type Server struct {
	planner *plan.Planner
	sharded *plan.ShardedCache // non-nil when the cache is ours / sharded
	quotas  *Quotas
	adm     *admission // nil = global admission disabled
	health  *health
	chaos   *fault.ServeInjector // nil = no chaos
	rec     *obs.Recorder
	maxBody int64

	fallback     *fallbackStore
	degradeAfter time.Duration // 0 = degradation disabled
	maxDeadline  time.Duration

	capacity, shards int
	healthWindow     time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithQuota grants each tenant rate plan/simulate requests per second
// with bursts up to burst; rate <= 0 disables admission control (the
// default).
func WithQuota(rate float64, burst int) Option {
	return func(s *Server) { s.quotas = NewQuotas(rate, burst) }
}

// WithAdmission enables the adaptive global concurrency limit in front
// of the per-tenant quotas; see AdmissionConfig.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) { s.adm = newAdmission(cfg) }
}

// WithDegraded enables graceful degradation: when a cold plan runs
// longer than after (or than half the request's remaining deadline,
// whichever is smaller) and a stale mapping of the same fingerprint
// family is retained (capacity families, 0 = DefaultFallbackCapacity),
// the stale mapping is served flagged degraded:true while the cold plan
// finishes in the background to warm the cache.
func WithDegraded(after time.Duration, capacity int) Option {
	return func(s *Server) {
		s.degradeAfter = after
		s.fallback = newFallbackStore(capacity)
	}
}

// WithChaos injects deterministic serve-path faults (slow/leaked/crashed
// singleflight leaders, cache-shard stalls, handler panics) for chaos
// testing; see fault.ServeInjector. Cache stalls require the server to
// own its cache (they are skipped under WithPlanner).
func WithChaos(inj *fault.ServeInjector) Option {
	return func(s *Server) { s.chaos = inj }
}

// WithMaxDeadline caps client-requested deadlines (default
// DefaultMaxDeadline).
func WithMaxDeadline(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.maxDeadline = d
		}
	}
}

// WithHealthWindow sets how long readiness reports degraded after the
// last stress signal (default DefaultDegradedWindow).
func WithHealthWindow(d time.Duration) Option {
	return func(s *Server) { s.healthWindow = d }
}

// WithCache sizes the schedule cache: total capacity mappings over the
// given number of fingerprint shards (0 picks the plan package defaults).
func WithCache(capacity, shards int) Option {
	return func(s *Server) { s.capacity, s.shards = capacity, shards }
}

// WithPlanner serves requests through the given planner instead of a
// private one (e.g. to share a cache with in-process callers). Overrides
// WithCache.
func WithPlanner(p *plan.Planner) Option {
	return func(s *Server) { s.planner = p }
}

// WithRecorder publishes the server's counters into rec instead of a
// private recorder.
func WithRecorder(rec *obs.Recorder) Option {
	return func(s *Server) { s.rec = rec }
}

// WithMaxBodyBytes bounds request bodies (default DefaultMaxBodyBytes).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// New returns a Server with a private planner backed by a sharded
// schedule cache, no quotas, no global admission limit, no degradation
// and a private metrics recorder, overridden by the given options.
func New(opts ...Option) *Server {
	s := &Server{maxBody: DefaultMaxBodyBytes, maxDeadline: DefaultMaxDeadline}
	for _, opt := range opts {
		opt(s)
	}
	if s.planner == nil {
		capacity := s.capacity
		if capacity < 1 {
			capacity = plan.DefaultCacheSize
		}
		shards := s.shards
		if shards < 1 {
			shards = plan.DefaultShards
		}
		s.sharded = plan.NewShardedCache(capacity, shards)
		var cache plan.Cache = s.sharded
		if s.chaos.Active() {
			cache = &chaosCache{Cache: s.sharded, inj: s.chaos}
		}
		s.planner = plan.NewWithCache(cache)
	} else if c, ok := s.planner.Cache().(*plan.ShardedCache); ok {
		s.sharded = c
	}
	if s.rec == nil {
		s.rec = obs.New(0, obs.WithName("mtaskd"))
	}
	s.health = newHealth(s.healthWindow)
	return s
}

// Planner returns the planner serving this server's requests.
func (s *Server) Planner() *plan.Planner { return s.planner }

// Recorder returns the server's metrics recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// SetDraining flips the server's draining state: while draining,
// GET /readyz answers 503 "draining" so load balancers stop routing new
// work here, while in-flight requests keep being served. The daemon
// calls it on SIGTERM before shutting the listener down.
func (s *Server) SetDraining(v bool) { s.health.SetDraining(v) }

// Readiness returns the current readiness state: HealthOK,
// HealthDegraded or HealthDraining.
func (s *Server) Readiness() string { return s.health.Readiness() }

// Handler returns the service's HTTP handler:
//
//	POST /v1/plan      graph+machine+options -> mapping summary
//	POST /v1/simulate  graph+machine+options -> simulated timing
//	GET  /healthz      liveness probe (always "ok" while the process serves)
//	GET  /readyz       readiness probe ("ok" | "degraded" | 503 "draining")
//	GET  /metricz      counters in "name value" text form
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	return s.middleware(mux)
}

// middleware is the outermost request stage: panic recovery (injected or
// real handler panics become 500s and a stress signal, never a dead
// process), chaos sequence assignment, and deadline propagation from
// DeadlineHeader into the request context.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.rec.Counter("serve.panics").Add(1)
				s.health.Stress()
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Errorf("handler panic: %v", rec))
			}
		}()
		ctx := r.Context()
		// Chaos strikes the serve path only: health and metrics probes are
		// the instruments the harness observes the blast with.
		if s.chaos.Active() && r.Method == http.MethodPost {
			seq := s.chaos.NextSeq()
			ctx = withChaosSeq(ctx, seq)
			if f := s.chaos.Decide(fault.PointHandler, seq); f != nil && f.Kind == fault.Panic {
				s.rec.Counter("serve.chaos.injected").Add(1)
				panic(fmt.Sprintf("chaos: injected handler panic (seq %d)", seq))
			}
		}
		if h := r.Header.Get(DeadlineHeader); h != "" {
			d, err := time.ParseDuration(h)
			if err != nil || d <= 0 {
				writeError(w, http.StatusBadRequest, "invalid_argument",
					fmt.Errorf("invalid %s %q: want a positive Go duration", DeadlineHeader, h))
				return
			}
			if s.maxDeadline > 0 && d > s.maxDeadline {
				d = s.maxDeadline
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := s.health.Readiness()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if state == HealthDraining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, state)
}

// Metrics snapshots the server's counters, including the per-shard cache
// gauges (serve.cache.shard<i>.hits/misses/len) when the cache is
// sharded, and the admission gauges.
func (s *Server) Metrics() map[string]int64 {
	s.publishGauges()
	return s.rec.Metrics()
}

func (s *Server) publishGauges() {
	hits, misses := s.planner.Cache().Stats()
	s.rec.SetMetric("serve.cache.hits", int64(hits))
	s.rec.SetMetric("serve.cache.misses", int64(misses))
	s.rec.SetMetric("serve.cache.len", int64(s.planner.Cache().Len()))
	s.rec.SetMetric("serve.tenants", int64(s.quotas.Tenants()))
	if s.adm != nil {
		s.rec.SetMetric("serve.queue_depth", int64(s.adm.QueueDepth()))
		s.rec.SetMetric("serve.admission.limit", int64(s.adm.Limit()))
		s.rec.SetMetric("serve.admission.inflight", int64(s.adm.Inflight()))
	}
	if s.fallback != nil {
		s.rec.SetMetric("serve.fallback.len", int64(s.fallback.Len()))
	}
	if s.sharded == nil {
		return
	}
	for i, st := range s.sharded.ShardStats() {
		s.rec.SetMetric(fmt.Sprintf("serve.cache.shard%03d.hits", i), int64(st.Hits))
		s.rec.SetMetric(fmt.Sprintf("serve.cache.shard%03d.misses", i), int64(st.Misses))
		s.rec.SetMetric(fmt.Sprintf("serve.cache.shard%03d.len", i), int64(st.Len))
	}
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	s.publishGauges()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.rec.MetricsString())
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request)     { s.serveAPI(w, r, false) }
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) { s.serveAPI(w, r, true) }

// serveAPI is the shared plan/simulate pipeline: global admission,
// per-tenant quota, decode+validate, plan (with degradation), and for
// simulate the cluster simulator on top.
func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request, simulate bool) {
	s.rec.Counter("serve.requests").Add(1)
	ctx := r.Context()

	// Stage 1: global admission — shed or queue before any per-request
	// work is done. The AIMD latency sample starts at arrival, not at
	// admission: time spent queued is exactly the signal that the
	// current limit exceeds what the machine sustains, and it must push
	// the limit down even when the admitted work itself (cache hits)
	// stays fast.
	start := time.Now()
	if err := s.adm.Acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.rec.Counter("serve.shed").Add(1)
			s.health.Stress()
			w.Header().Set("Retry-After",
				strconv.Itoa(int(math.Ceil(s.adm.RetryAfter().Seconds()))))
			writeError(w, http.StatusServiceUnavailable, "overloaded", err)
			return
		}
		// The deadline expired (or the client left) while queued.
		s.writeCtxError(w, err)
		return
	}
	sample, overloaded := false, false
	defer func() {
		if sample {
			s.adm.Release(time.Since(start), overloaded)
		} else {
			s.adm.ReleaseNoSample()
		}
	}()

	// Stage 2: per-tenant quota.
	if err := s.quotas.Admit(tenantOf(r)); err != nil {
		s.rec.Counter("serve.rejected").Add(1)
		writeError(w, http.StatusTooManyRequests, "quota_exceeded", err)
		return
	}

	// Stage 3: decode and validate under the request deadline.
	var req PlanRequest
	body := ctxReader{ctx: ctx, r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The deadline expired mid-decode: that is the client's
			// budget, not a malformed body — map it like every other
			// context expiry instead of the generic 400/500 path.
			s.writeCtxError(w, ctxErr)
			return
		}
		writeError(w, http.StatusBadRequest, "invalid_argument", fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err)
		return
	}
	opts, err := req.planOpts()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", err)
		return
	}

	// Stage 4: plan — admitted work; its latency feeds the AIMD limit.
	sample = true
	mp, info, err := s.planMapping(ctx, &req, opts)
	if err != nil {
		overloaded = isOverloadSignal(err)
		s.writePlanError(w, err)
		return
	}
	switch {
	case info.Degraded:
		s.rec.Counter("serve.degraded").Add(1)
		s.health.Stress()
	case info.CacheHit:
		s.rec.Counter("serve.cache_hits").Add(1)
	case info.Coalesced:
		s.rec.Counter("serve.coalesced").Add(1)
	case info.Incremental:
		// Incremental refines Cold: the request ran the planning
		// pipeline but adopted remembered layer schedules instead of
		// searching them. Counted separately from serve.plans_cold so
		// the two cold variants are distinguishable on /metricz.
		s.rec.Counter("serve.plans_incremental").Add(1)
		s.rec.Counter("serve.incremental_layers_reused").Add(int64(info.ReusedLayers))
	case info.Cold:
		s.rec.Counter("serve.plans_cold").Add(1)
	}

	if !simulate {
		writeJSON(w, http.StatusOK, buildPlanResponse(mp, info))
		return
	}
	model := (&cost.Model{Machine: mp.Machine}).WithMemo()
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		s.writePlanError(w, err)
		return
	}
	res, err := cluster.SimulateCtx(ctx, model, prog)
	if err != nil {
		overloaded = isOverloadSignal(err)
		s.writePlanError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &SimulateResponse{
		Graph:       mp.Schedule.Source.Name,
		Machine:     mp.Machine.Name,
		Makespan:    res.Makespan,
		CompTime:    res.CompTime,
		CommTime:    res.CommTime,
		RedistTime:  res.RedistTime,
		Cached:      info.CacheHit,
		Coalesced:   info.Coalesced,
		Degraded:    info.Degraded,
		Incremental: info.Incremental,
	})
}

// planMapping runs the planner for an admitted, decoded request, with
// graceful degradation when configured: a cold plan that exceeds its
// budget is answered by the family's stale fallback mapping (flagged
// Degraded) while the cold plan finishes in the background to warm the
// cache. The request context bounds everything; the background
// completion alone survives it, bounded by its own warm budget.
func (s *Server) planMapping(ctx context.Context, req *PlanRequest, opts []plan.Option) (*core.Mapping, plan.Info, error) {
	// The server's recorder doubles as the planner's trace sink, so the
	// plan.* counters (cache, coalescing, incremental reuse, memo) are
	// exposed on /metricz next to the serve.* ones.
	opts = append(opts, plan.WithTrace(s.rec))
	if s.chaos.Active() {
		opts = append(opts, plan.WithColdPlanHook(s.chaosColdPlanHook))
	}
	fam := familyOf(req.Graph, req.Machine, req.strategyName(), req.Options.Cores)

	if s.degradeAfter <= 0 {
		var info plan.Info
		opts = append(opts, plan.WithInfo(&info))
		mp, err := s.planner.Plan(ctx, req.Graph, req.Machine, opts...)
		if err == nil {
			s.fallback.Store(fam, mp)
		}
		return mp, info, err
	}

	budget := s.degradeAfter
	if dl, ok := ctx.Deadline(); ok {
		if half := time.Until(dl) / 2; half < budget {
			budget = half
		}
	}
	if budget <= 0 {
		budget = time.Millisecond
	}

	// The plan runs on a context detached from the request: if we end up
	// serving the stale fallback, the cold plan keeps going (bounded by
	// the warm budget) so the cache warms and the family heals. Until
	// that moment, the request context's demise cancels it — abandoned
	// requests must not burn cores.
	type planRes struct {
		mp   *core.Mapping
		info plan.Info
		err  error
	}
	planCtx, cancelPlan := context.WithCancel(context.WithoutCancel(ctx))
	var servedStale atomic.Bool
	stopWatch := context.AfterFunc(ctx, func() {
		if !servedStale.Load() {
			cancelPlan()
		}
	})
	ch := make(chan planRes, 1)
	go func() {
		var info plan.Info
		o := append(opts[:len(opts):len(opts)], plan.WithInfo(&info))
		mp, err := s.planner.Plan(planCtx, req.Graph, req.Machine, o...)
		ch <- planRes{mp, info, err}
	}()
	finish := func(r planRes) (*core.Mapping, plan.Info, error) {
		stopWatch()
		cancelPlan()
		if r.err == nil {
			s.fallback.Store(fam, r.mp)
		}
		return r.mp, r.info, r.err
	}

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case r := <-ch:
		return finish(r)
	case <-ctx.Done():
		stopWatch()
		cancelPlan()
		return nil, plan.Info{}, fmt.Errorf("planning %q: %w", req.Graph.Name, ctx.Err())
	case <-timer.C:
	}

	// Budget blown: degrade if the family has a stale answer.
	if mp, ok := s.fallback.Peek(fam); ok {
		servedStale.Store(true)
		stopWatch()
		time.AfterFunc(s.warmBudget(), cancelPlan)
		return mp, plan.Info{Degraded: true}, nil
	}

	// Nothing to degrade to: keep waiting out the deadline.
	select {
	case r := <-ch:
		return finish(r)
	case <-ctx.Done():
		stopWatch()
		cancelPlan()
		return nil, plan.Info{}, fmt.Errorf("planning %q: %w", req.Graph.Name, ctx.Err())
	}
}

// warmBudget bounds how long a cold plan may keep running after its
// request was answered with a stale fallback.
func (s *Server) warmBudget() time.Duration {
	w := 10 * s.degradeAfter
	if w < time.Second {
		w = time.Second
	}
	if w > 30*time.Second {
		w = 30 * time.Second
	}
	return w
}

// ctxReader fails reads once the request context is done, so a deadline
// expiring mid-decode surfaces as context.DeadlineExceeded instead of
// blocking on the body.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (cr ctxReader) Read(p []byte) (int, error) {
	if err := cr.ctx.Err(); err != nil {
		return 0, err
	}
	return cr.r.Read(p)
}

// statusOf maps an error from any stage of the pipeline to its HTTP
// status and stable machine-readable code. Deadline expiry is checked
// before generic cancellation: the planner wraps both the sentinel
// core.ErrCanceled and the context cause, so errors.Is sees through to
// the root.
func statusOf(err error) (status int, code string) {
	switch {
	case errors.Is(err, arch.ErrInvalidMachine),
		errors.Is(err, graph.ErrCyclicGraph),
		errors.Is(err, core.ErrNoCores):
		return http.StatusBadRequest, "invalid_argument"
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota_exceeded"
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCanceled):
		return 499, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// isOverloadSignal reports whether a failed request should shrink the
// adaptive concurrency limit: deadline expiry means the server was too
// slow for the offered load; a client canceling early does not.
func isOverloadSignal(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// writeCtxError maps a bare context error (from queueing or decoding) to
// 504/499 and counts deadline expiries.
func (s *Server) writeCtxError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	if code == "deadline_exceeded" {
		s.rec.Counter("serve.deadline_exceeded").Add(1)
	}
	writeError(w, status, code, err)
}

// writePlanError maps planning-pipeline errors to HTTP statuses via
// statusOf and keeps the failure counters.
func (s *Server) writePlanError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	switch code {
	case "deadline_exceeded":
		s.rec.Counter("serve.deadline_exceeded").Add(1)
	case "internal":
		s.rec.Counter("serve.errors").Add(1)
	}
	writeError(w, status, code, err)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, &ErrorResponse{Error: err.Error(), Code: code})
}
