package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/ode"
)

// testRequestBody marshals a solver-graph plan request at small scale;
// steps varies the graph fingerprint.
func testRequestBody(t *testing.T, steps int, opts PlanOptions) []byte {
	t.Helper()
	body, err := json.Marshal(&PlanRequest{
		Graph:   ode.BuildPABGraph(4000, 600, 8, 2, steps),
		Machine: arch.CHiC().SubsetCores(16),
		Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(h http.Handler, path string, body []byte, tenant string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestPlanEndpoint(t *testing.T) {
	s := New()
	h := s.Handler()
	body := testRequestBody(t, 2, PlanOptions{Strategy: "scattered"})

	w := post(h, "/v1/plan", body, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Graph == "" || resp.Machine == "" || resp.P != 16 || resp.Layers < 1 {
		t.Fatalf("malformed response: %+v", resp)
	}
	if resp.Strategy != "scattered" {
		t.Fatalf("strategy %q, want scattered", resp.Strategy)
	}
	if resp.Makespan <= 0 {
		t.Fatalf("non-positive makespan %v", resp.Makespan)
	}
	if len(resp.Placements) == 0 || len(resp.LayerGroups) != resp.Layers {
		t.Fatalf("missing placements/layer groups: %+v", resp)
	}
	total := 0
	for _, p := range resp.Placements {
		if len(p.Cores) == 0 {
			t.Fatalf("task %q placed on no cores", p.Task)
		}
		total++
	}
	if resp.Cached || resp.Coalesced {
		t.Fatalf("first request reported cached=%v coalesced=%v", resp.Cached, resp.Coalesced)
	}

	// An identical request is served from the sharded cache.
	w = post(h, "/v1/plan", body, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp2 PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if resp2.Makespan != resp.Makespan {
		t.Fatalf("cached makespan %v != cold %v", resp2.Makespan, resp.Makespan)
	}

	m := s.Metrics()
	if m["serve.requests"] != 2 || m["serve.plans_cold"] != 1 || m["serve.cache_hits"] != 1 {
		t.Fatalf("metrics: %v", m)
	}
}

// TestPlanEndpointIncremental extends a previously planned solver graph by
// one time step: the new fingerprint misses the whole-mapping cache, but
// the planner adopts the remembered layer schedules of the family, and the
// serving layer surfaces that as its own outcome — in the response body,
// in the serve.* counters and (via the shared recorder) in the plan.*
// counters on /metricz.
func TestPlanEndpointIncremental(t *testing.T) {
	s := New()
	h := s.Handler()

	if w := post(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{}), ""); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	w := post(h, "/v1/plan", testRequestBody(t, 3, PlanOptions{}), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || !resp.Incremental || resp.ReusedLayers == 0 {
		t.Fatalf("extended graph not served incrementally: %+v", resp)
	}
	if resp.ReusedLayers+resp.PatchedLayers != resp.Layers {
		t.Fatalf("layer split %d+%d != %d layers",
			resp.ReusedLayers, resp.PatchedLayers, resp.Layers)
	}

	m := s.Metrics()
	if m["serve.plans_cold"] != 1 || m["serve.plans_incremental"] != 1 {
		t.Fatalf("serve outcome counters: %v", m)
	}
	if m["serve.incremental_layers_reused"] != int64(resp.ReusedLayers) {
		t.Fatalf("reused-layer counter %d, response says %d",
			m["serve.incremental_layers_reused"], resp.ReusedLayers)
	}
	if m["plan.incremental_hits"] != 1 {
		t.Fatalf("plan.* counters not exposed through the serve recorder: %v", m)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := New()
	w := post(s.Handler(), "/v1/simulate", testRequestBody(t, 2, PlanOptions{}), "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Makespan <= 0 || resp.CompTime <= 0 {
		t.Fatalf("implausible simulation: %+v", resp)
	}
}

func TestQuotaExhaustionReturns429(t *testing.T) {
	s := New(WithQuota(1e-9, 2)) // 2 requests, then effectively no refill
	h := s.Handler()
	body := testRequestBody(t, 2, PlanOptions{})

	for i := 0; i < 2; i++ {
		if w := post(h, "/v1/plan", body, "alice"); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body)
		}
	}
	w := post(h, "/v1/plan", body, "alice")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "quota_exceeded" || !strings.Contains(er.Error, "quota") {
		t.Fatalf("error body: %+v", er)
	}

	// Another tenant is unaffected.
	if w := post(h, "/v1/plan", body, "bob"); w.Code != http.StatusOK {
		t.Fatalf("tenant bob: status %d: %s", w.Code, w.Body)
	}
	if m := s.Metrics(); m["serve.rejected"] != 1 {
		t.Fatalf("serve.rejected = %d, want 1", m["serve.rejected"])
	}
}

func TestBadRequests(t *testing.T) {
	s := New()
	h := s.Handler()
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"not json", []byte(`{"graph":`)},
		{"no machine", []byte(`{"graph":{"name":"g","tasks":[{"name":"a","work":1}]}}`)},
		{"no graph", []byte(`{"machine":{"Name":"m","Nodes":1,"ProcsPerNode":1,"CoresPerProc":2,"CoreGFlops":1}}`)},
		{"bad strategy", testRequestBody(t, 1, PlanOptions{Strategy: "zigzag"})},
		{"cyclic graph", []byte(`{"graph":{"name":"c","tasks":[{"name":"a","work":1},{"name":"b","work":1}],` +
			`"edges":[{"from":0,"to":1},{"from":1,"to":0}]},` +
			`"machine":{"Name":"m","Nodes":1,"ProcsPerNode":1,"CoresPerProc":2,"CoreGFlops":1,` +
			`"Links":[{},{"Latency":1e-6,"Bandwidth":1e9},{"Latency":1e-6,"Bandwidth":1e9},{"Latency":1e-6,"Bandwidth":1e9}]}}`)},
	} {
		w := post(h, "/v1/plan", tc.body, "")
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, w.Body)
		} else if er.Code != "invalid_argument" {
			t.Errorf("%s: code %q, want invalid_argument", tc.name, er.Code)
		}
	}
}

func TestHealthAndMetricz(t *testing.T) {
	s := New()
	h := s.Handler()

	req := httptest.NewRequest("GET", "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", w.Code, w.Body)
	}

	post(h, "/v1/plan", testRequestBody(t, 2, PlanOptions{}), "")
	req = httptest.NewRequest("GET", "/metricz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metricz status %d", w.Code)
	}
	for _, want := range []string{"serve.requests 1", "serve.plans_cold 1", "serve.cache.len 1", "serve.cache.shard"} {
		if !strings.Contains(w.Body.String(), want) {
			t.Fatalf("metricz missing %q:\n%s", want, w.Body)
		}
	}
}

// TestConcurrentRequestsCoalesce hammers one fingerprint from many
// clients concurrently and checks the singleflight contract at the HTTP
// boundary: every response is 200 with the identical makespan, and
// exactly one cold plan ran — everything else was a cache hit or a
// coalesced follower. Run under -race.
func TestConcurrentRequestsCoalesce(t *testing.T) {
	s := New()
	h := s.Handler()
	body := testRequestBody(t, 4, PlanOptions{})

	const clients = 64
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
		spans = map[float64]int{}
		fails []string
	)
	start.Add(1)
	done.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			w := post(h, "/v1/plan", body, "")
			mu.Lock()
			defer mu.Unlock()
			if w.Code != http.StatusOK {
				fails = append(fails, w.Body.String())
				return
			}
			var resp PlanResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				fails = append(fails, err.Error())
				return
			}
			spans[resp.Makespan]++
		}()
	}
	start.Done()
	done.Wait()

	if len(fails) > 0 {
		t.Fatalf("%d failures, first: %s", len(fails), fails[0])
	}
	if len(spans) != 1 {
		t.Fatalf("responses disagree on the makespan: %v", spans)
	}
	m := s.Metrics()
	if m["serve.plans_cold"] != 1 {
		t.Fatalf("serve.plans_cold = %d, want exactly 1", m["serve.plans_cold"])
	}
	if m["serve.coalesced"]+m["serve.cache_hits"] != clients-1 {
		t.Fatalf("coalesced %d + cache hits %d != %d", m["serve.coalesced"], m["serve.cache_hits"], clients-1)
	}
}
