package serve

import (
	"fmt"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/graph"
	"mtask/internal/plan"
)

// Wire types of the planning service. A PlanRequest carries the same
// inputs as a plan.Planner.Plan call: the M-task graph (see the JSON
// codec in internal/graph), the machine description (plain JSON of
// arch.Machine) and the request options. The response summarizes the
// mapping — per-layer group structure and per-task placements — plus how
// the request was served (cached / coalesced / cold), so load generators
// and clients can observe the cache and coalescing behaviour end to end.

// PlanOptions is the wire form of the per-request planning knobs.
type PlanOptions struct {
	// Strategy names the mapping strategy: "consecutive" (default),
	// "scattered" or "mixed:<d>".
	Strategy string `json:"strategy,omitempty"`
	// Cores schedules on this many symbolic cores (0 = whole machine).
	Cores int `json:"cores,omitempty"`
	// ForceGroups pins the per-layer group count (0 = search).
	ForceGroups int `json:"force_groups,omitempty"`
	// MinGroups/MaxGroups bound the group-count search (0 = unbounded).
	MinGroups int `json:"min_groups,omitempty"`
	MaxGroups int `json:"max_groups,omitempty"`
}

// PlanRequest is the body of POST /v1/plan and POST /v1/simulate.
type PlanRequest struct {
	Graph   *graph.Graph  `json:"graph"`
	Machine *arch.Machine `json:"machine"`
	Options PlanOptions   `json:"options,omitempty"`
}

// Validate rejects structurally incomplete requests before they reach the
// planner (the planner re-validates semantics: machine shape, DAG-ness).
func (r *PlanRequest) Validate() error {
	if r.Graph == nil {
		return fmt.Errorf("request has no graph")
	}
	if r.Machine == nil {
		return fmt.Errorf("request has no machine")
	}
	if r.Graph.Len() == 0 {
		return fmt.Errorf("request graph %q has no tasks", r.Graph.Name)
	}
	return nil
}

// planOpts converts the wire options to planner options.
func (r *PlanRequest) planOpts() ([]plan.Option, error) {
	var opts []plan.Option
	if r.Options.Strategy != "" {
		strat, err := core.StrategyByName(r.Options.Strategy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, plan.WithStrategy(strat))
	}
	if r.Options.Cores != 0 {
		opts = append(opts, plan.WithCores(r.Options.Cores))
	}
	if r.Options.ForceGroups != 0 {
		opts = append(opts, plan.WithForceGroups(r.Options.ForceGroups))
	}
	if r.Options.MinGroups != 0 || r.Options.MaxGroups != 0 {
		opts = append(opts, plan.WithGroupBounds(r.Options.MinGroups, r.Options.MaxGroups))
	}
	return opts, nil
}

// strategyName returns the resolved mapping-strategy name, used to key
// the request's fingerprint family. Call only after planOpts succeeded.
func (r *PlanRequest) strategyName() string {
	if r.Options.Strategy == "" {
		return core.Consecutive{}.Name()
	}
	strat, err := core.StrategyByName(r.Options.Strategy)
	if err != nil {
		return r.Options.Strategy
	}
	return strat.Name()
}

// TaskPlacement is one scheduled task's physical placement.
type TaskPlacement struct {
	Task  string   `json:"task"`
	Layer int      `json:"layer"`
	Group int      `json:"group"`
	Cores []string `json:"cores"` // paper-style nid.pid.cid labels
}

// PlanResponse is the body of a successful POST /v1/plan.
type PlanResponse struct {
	Graph   string `json:"graph"`
	Machine string `json:"machine"`

	// Fingerprints identify the request for cache/coalescing debugging.
	GraphFingerprint   string `json:"graph_fingerprint"`
	MachineFingerprint string `json:"machine_fingerprint"`

	Strategy string `json:"strategy"`
	P        int    `json:"cores"`
	Layers   int    `json:"layers"`
	// LayerGroups[i] is the group count of layer i.
	LayerGroups []int `json:"layer_groups"`
	// Makespan is the schedule's predicted symbolic makespan in seconds.
	Makespan float64 `json:"makespan"`

	Placements []TaskPlacement `json:"placements"`

	// How the request was served. Degraded marks a stale fallback
	// mapping of the request's fingerprint family, served because the
	// cold plan exceeded its budget (see the serve package doc).
	// Incremental marks a cold plan that adopted ReusedLayers layer
	// schedules from the planner's family index and searched only
	// PatchedLayers.
	Cached        bool `json:"cached"`
	Coalesced     bool `json:"coalesced"`
	Degraded      bool `json:"degraded,omitempty"`
	Incremental   bool `json:"incremental,omitempty"`
	ReusedLayers  int  `json:"reused_layers,omitempty"`
	PatchedLayers int  `json:"patched_layers,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate: the
// deterministic cluster simulator's prediction for the request's mapping
// (a cluster.Result without the per-task arrays).
type SimulateResponse struct {
	Graph    string  `json:"graph"`
	Machine  string  `json:"machine"`
	Makespan float64 `json:"makespan"`
	// Aggregates over all tasks (not wall-clock: concurrent
	// contributions accumulate).
	CompTime   float64 `json:"comp_time"`
	CommTime   float64 `json:"comm_time"`
	RedistTime float64 `json:"redist_time"`

	Cached      bool `json:"cached"`
	Coalesced   bool `json:"coalesced"`
	Degraded    bool `json:"degraded,omitempty"`
	Incremental bool `json:"incremental,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable classification:
	// "invalid_argument" (400), "quota_exceeded" (429),
	// "overloaded" (503, load shed — retry after Retry-After),
	// "deadline_exceeded" (504), "canceled" (499) or "internal" (500).
	Code string `json:"code"`
}

// buildPlanResponse summarizes a mapping.
func buildPlanResponse(mp *core.Mapping, info plan.Info) *PlanResponse {
	s := mp.Schedule
	resp := &PlanResponse{
		Graph:              s.Source.Name,
		Machine:            mp.Machine.Name,
		GraphFingerprint:   fmt.Sprintf("%016x", plan.GraphFingerprint(s.Source)),
		MachineFingerprint: fmt.Sprintf("%016x", plan.MachineFingerprint(mp.Machine)),
		Strategy:           mp.Strategy.Name(),
		P:                  s.P,
		Layers:             len(s.Layers),
		LayerGroups:        make([]int, len(s.Layers)),
		Makespan:           s.Time,
		Cached:             info.CacheHit,
		Coalesced:          info.Coalesced,
		Degraded:           info.Degraded,
		Incremental:        info.Incremental,
		ReusedLayers:       info.ReusedLayers,
		PatchedLayers:      info.PatchedLayers,
	}
	for li, layer := range s.Layers {
		resp.LayerGroups[li] = layer.NumGroups()
		for gi, tasks := range layer.Groups {
			cores := mp.Cores[li][gi]
			labels := make([]string, len(cores))
			for ci, c := range cores {
				labels[ci] = c.String()
			}
			for _, id := range tasks {
				resp.Placements = append(resp.Placements, TaskPlacement{
					Task:  s.Graph.Task(id).Name,
					Layer: li,
					Group: gi,
					Cores: labels,
				})
			}
		}
	}
	return resp
}
