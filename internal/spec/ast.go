package spec

import "fmt"

// Access is a parameter access annotation.
type Access int

const (
	// In parameters are read by the M-task.
	In Access = iota
	// Out parameters are produced by the M-task.
	Out
	// InOut parameters are read and updated.
	InOut
)

func (a Access) String() string {
	switch a {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Access(%d)", int(a))
}

// Param is a declared parameter of an M-task or of the main module.
type Param struct {
	Name   string
	Type   string // scalar, int, vector, vectors, ...
	Access Access
	Dist   string // replic, block, cyclic or empty
}

// TaskDecl declares a basic M-task: its parameter interface and its cost
// annotations (sequential work in operations, internal collective payload
// in bytes, output size in bytes, and an optional width bound).
type TaskDecl struct {
	Name     string
	Params   []Param
	Work     float64
	Comm     int
	Out      int
	MaxWidth int
}

// ConstDecl is a named integer constant; Known is false for "..."
// placeholders (such as Tend in the paper's Fig. 3), which may be used in
// while conditions but not as loop bounds.
type ConstDecl struct {
	Name  string
	Value float64
	Known bool
}

// Expr is an argument expression of an activation: a variable, an indexed
// variable V[i], or an integer literal.
type Expr struct {
	Name  string // variable name; empty for a literal
	Index *Expr  // optional subscript
	Num   float64
	IsNum bool
	Line  int
}

func (e *Expr) String() string {
	if e.IsNum {
		return fmt.Sprintf("%g", e.Num)
	}
	if e.Index != nil {
		return fmt.Sprintf("%s[%s]", e.Name, e.Index)
	}
	return e.Name
}

// Stmt is a statement of the module expression.
type Stmt interface{ stmt() }

// CallStmt activates an M-task.
type CallStmt struct {
	Task string
	Args []*Expr
	Line int
}

// SeqStmt executes its children one after another.
type SeqStmt struct{ Body []Stmt }

// LoopStmt is a counting loop: parfor (independent iterations) or for
// (iterations with input-output relations). Bounds are expressions
// resolved at unroll time (constants or enclosing loop variables).
type LoopStmt struct {
	Var    string
	Lo, Hi *Expr
	Par    bool // parfor
	Body   []Stmt
	Line   int
}

// WhileStmt repeats its body while the (opaque) condition holds; it
// compiles into a composed node whose Sub graph is the loop body.
type WhileStmt struct {
	CondVar  string // the variable steering the loop (e.g. t)
	CondText string
	Body     []Stmt
	Line     int
}

func (*CallStmt) stmt()  {}
func (*SeqStmt) stmt()   {}
func (*LoopStmt) stmt()  {}
func (*WhileStmt) stmt() {}

// VarDecl declares module-local variables.
type VarDecl struct {
	Names []string
	Type  string
}

// MainDecl is the cmmain module.
type MainDecl struct {
	Name   string
	Params []Param
	Vars   []VarDecl
	Body   []Stmt
}

// Program is a parsed specification.
type Program struct {
	Consts map[string]*ConstDecl
	Tasks  map[string]*TaskDecl
	Main   *MainDecl
}
