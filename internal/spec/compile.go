package spec

import (
	"fmt"
	"sort"
	"strings"

	"mtask/internal/graph"
)

// Unit is a compiled specification: the upper-level hierarchical M-task
// graph (while loops appear as composed nodes carrying their body as a Sub
// graph, as produced by the CM-task compiler in Fig. 4).
type Unit struct {
	Program *Program
	Graph   *graph.Graph
}

// Compile parses and compiles a specification source into its hierarchical
// M-task graph: counting loops are unrolled, activations become M-tasks
// with the declared cost annotations, and input-output relations derived
// from the parameter access annotations become edges.
func Compile(src string) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{prog: prog}
	g, err := c.buildGraph(prog.Main.Name, prog.Main.Body, map[string]int{})
	if err != nil {
		return nil, err
	}
	g.AddStartStop()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Unit{Program: prog, Graph: g}, nil
}

// compiler carries the declarations during graph construction.
type compiler struct {
	prog *Program
}

// depState tracks data-dependence information per variable instance key
// ("t", "V[3]", ...) during unrolled construction.
type depState struct {
	g *graph.Graph
	// lastWrite maps an instance key to the task that last wrote it.
	lastWrite map[string]graph.TaskID
	// instances maps a base variable name to its known instance keys.
	instances map[string]map[string]bool
	// outBytes remembers the producing task's output size per key.
	outBytes map[string]int
}

func newDepState(g *graph.Graph) *depState {
	return &depState{
		g:         g,
		lastWrite: make(map[string]graph.TaskID),
		instances: make(map[string]map[string]bool),
		outBytes:  make(map[string]int),
	}
}

// keysFor returns the instance keys affected by an access to the given
// expression: an indexed access touches its own key plus the whole-array
// key; an unindexed access to an array with known instances touches all of
// them.
func (d *depState) keysFor(key, base string) []string {
	keys := []string{key}
	if key != base {
		keys = append(keys, base)
	} else if inst := d.instances[base]; len(inst) > 0 {
		sorted := make([]string, 0, len(inst))
		for k := range inst {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		keys = append(keys, sorted...)
	}
	return keys
}

// read records task t reading the instance and returns its producers: the
// writers of every overlapping key (its own instance and the whole array).
// The M-task graph of the paper contains exactly these input-output
// relations (Section 2.1); anti-dependences do not appear because the
// generated program gives every activation its own data instances.
func (d *depState) read(t graph.TaskID, key, base string) []graph.TaskID {
	var deps []graph.TaskID
	for _, k := range d.keysFor(key, base) {
		if w, ok := d.lastWrite[k]; ok && w != t {
			deps = append(deps, w)
		}
	}
	return deps
}

// write records task t writing the instance and returns the previous
// writers of overlapping keys (output dependences, which keep "last
// writer" well defined for subsequent readers).
func (d *depState) write(t graph.TaskID, key, base string, bytes int) []graph.TaskID {
	var deps []graph.TaskID
	for _, k := range d.keysFor(key, base) {
		if w, ok := d.lastWrite[k]; ok && w != t {
			deps = append(deps, w)
		}
	}
	d.lastWrite[key] = t
	d.outBytes[key] = bytes
	if key != base {
		if d.instances[base] == nil {
			d.instances[base] = make(map[string]bool)
		}
		d.instances[base][key] = true
	}
	return deps
}

// evalExpr resolves an expression to an integer using the constant and
// loop-variable environment.
func (c *compiler) evalExpr(e *Expr, env map[string]int) (int, error) {
	if e.IsNum {
		return int(e.Num), nil
	}
	if e.Index != nil {
		return 0, fmt.Errorf("spec:%d: indexed expression %s not allowed here", e.Line, e)
	}
	if v, ok := env[e.Name]; ok {
		return v, nil
	}
	if cst, ok := c.prog.Consts[e.Name]; ok {
		if !cst.Known {
			return 0, fmt.Errorf("spec:%d: constant %q has no value (declared as ...)", e.Line, e.Name)
		}
		return int(cst.Value), nil
	}
	return 0, fmt.Errorf("spec:%d: unknown name %q in constant expression", e.Line, e.Name)
}

// instanceKey resolves an argument expression to its instance key and base
// name ("V[3]", "V"); literals resolve to empty keys.
func (c *compiler) instanceKey(e *Expr, env map[string]int) (key, base string, err error) {
	if e.IsNum {
		return "", "", nil
	}
	if e.Index == nil {
		// A loop variable or constant used as a value argument is a
		// literal, not a data object.
		if _, ok := env[e.Name]; ok {
			return "", "", nil
		}
		if _, ok := c.prog.Consts[e.Name]; ok {
			return "", "", nil
		}
		return e.Name, e.Name, nil
	}
	idx, err := c.evalExpr(e.Index, env)
	if err != nil {
		return "", "", err
	}
	return fmt.Sprintf("%s[%d]", e.Name, idx), e.Name, nil
}

// buildGraph constructs the M-task graph of a statement list.
func (c *compiler) buildGraph(name string, body []Stmt, env map[string]int) (*graph.Graph, error) {
	g := graph.New(name)
	d := newDepState(g)
	if err := c.emitStmts(body, env, d); err != nil {
		return nil, err
	}
	return g, nil
}

func (c *compiler) emitStmts(body []Stmt, env map[string]int, d *depState) error {
	for _, s := range body {
		if err := c.emitStmt(s, env, d); err != nil {
			return err
		}
	}
	return nil
}

// taskRange records the task ids emitted by a subtree (for the parfor
// independence check).
func (c *compiler) emitStmt(s Stmt, env map[string]int, d *depState) error {
	switch st := s.(type) {
	case *SeqStmt:
		return c.emitStmts(st.Body, env, d)
	case *CallStmt:
		return c.emitCall(st, env, d)
	case *LoopStmt:
		return c.emitLoop(st, env, d)
	case *WhileStmt:
		return c.emitWhile(st, env, d)
	default:
		return fmt.Errorf("spec: unknown statement %T", s)
	}
}

func (c *compiler) emitCall(call *CallStmt, env map[string]int, d *depState) error {
	decl, ok := c.prog.Tasks[call.Task]
	if !ok {
		return fmt.Errorf("spec:%d: activation of undeclared task %q", call.Line, call.Task)
	}
	if len(call.Args) != len(decl.Params) {
		return fmt.Errorf("spec:%d: task %q expects %d arguments, got %d",
			call.Line, call.Task, len(decl.Params), len(call.Args))
	}
	// Render the resolved activation name.
	argStrs := make([]string, len(call.Args))
	keys := make([]string, len(call.Args))
	bases := make([]string, len(call.Args))
	for i, a := range call.Args {
		key, base, err := c.instanceKey(a, env)
		if err != nil {
			return err
		}
		keys[i], bases[i] = key, base
		if key == "" {
			if a.IsNum {
				argStrs[i] = a.String()
			} else if v, ok := env[a.Name]; ok {
				argStrs[i] = fmt.Sprintf("%d", v)
			} else {
				argStrs[i] = a.String()
			}
		} else {
			argStrs[i] = key
		}
	}
	outBytes := decl.Out
	if outBytes == 0 {
		outBytes = decl.Comm
	}
	id := d.g.AddTask(&graph.Task{
		Name:      fmt.Sprintf("%s(%s)", call.Task, strings.Join(argStrs, ",")),
		Kind:      graph.KindBasic,
		Work:      decl.Work,
		CommBytes: decl.Comm,
		CommCount: boolToInt(decl.Comm > 0),
		OutBytes:  outBytes,
		MaxWidth:  decl.MaxWidth,
	})
	addDeps := func(deps []graph.TaskID, bytes int) {
		for _, dep := range deps {
			d.g.MustEdge(dep, id, bytes)
		}
	}
	// Reads first, then writes (an inout parameter reads the value the
	// previous writer produced).
	for i, p := range decl.Params {
		if keys[i] == "" {
			continue
		}
		if p.Access == In || p.Access == InOut {
			addDeps(d.read(id, keys[i], bases[i]), d.outBytes[keys[i]])
		}
	}
	for i, p := range decl.Params {
		if keys[i] == "" {
			continue
		}
		if p.Access == Out || p.Access == InOut {
			addDeps(d.write(id, keys[i], bases[i], outBytes), 0)
		}
	}
	return nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (c *compiler) emitLoop(loop *LoopStmt, env map[string]int, d *depState) error {
	lo, err := c.evalExpr(loop.Lo, env)
	if err != nil {
		return err
	}
	hi, err := c.evalExpr(loop.Hi, env)
	if err != nil {
		return err
	}
	if _, shadow := env[loop.Var]; shadow {
		return fmt.Errorf("spec:%d: loop variable %q shadows an enclosing loop variable", loop.Line, loop.Var)
	}
	var iterTasks [][]graph.TaskID
	for v := lo; v <= hi; v++ {
		inner := make(map[string]int, len(env)+1)
		for k, val := range env {
			inner[k] = val
		}
		inner[loop.Var] = v
		before := d.g.Len()
		if err := c.emitStmts(loop.Body, inner, d); err != nil {
			return err
		}
		var ids []graph.TaskID
		for t := before; t < d.g.Len(); t++ {
			ids = append(ids, graph.TaskID(t))
		}
		iterTasks = append(iterTasks, ids)
	}
	// Semantic check: parfor iterations must be independent.
	if loop.Par {
		iterOf := make(map[graph.TaskID]int)
		for it, ids := range iterTasks {
			for _, id := range ids {
				iterOf[id] = it + 1
			}
		}
		for _, e := range d.g.Edges() {
			fi, ti := iterOf[e.From], iterOf[e.To]
			if fi != 0 && ti != 0 && fi != ti {
				return fmt.Errorf("spec:%d: parfor over %q has an input-output relation between iterations %d and %d (%s -> %s); use for instead",
					loop.Line, loop.Var, fi, ti, d.g.Task(e.From).Name, d.g.Task(e.To).Name)
			}
		}
	}
	return nil
}

func (c *compiler) emitWhile(w *WhileStmt, env map[string]int, d *depState) error {
	// Compile the body into a lower-level graph with its own
	// dependence scope.
	sub, err := c.buildGraph(fmt.Sprintf("while(%s)", strings.TrimSpace(w.CondText)), w.Body, env)
	if err != nil {
		return err
	}
	sub.AddStartStop()
	if err := sub.Validate(); err != nil {
		return err
	}
	// Collect the body's external variable accesses: the composed node
	// reads what the body reads and writes what the body writes.
	reads, writes := c.collectAccesses(w.Body, env)
	if w.CondVar != "" {
		reads[w.CondVar] = true
	}
	var work float64
	for _, t := range sub.Tasks() {
		work += t.Work
	}
	id := d.g.AddTask(&graph.Task{
		Name: sub.Name,
		Kind: graph.KindComposed,
		Work: work,
		Sub:  sub,
	})
	addDeps := func(deps []graph.TaskID, bytes int) {
		for _, dep := range deps {
			d.g.MustEdge(dep, id, bytes)
		}
	}
	for _, base := range sortedKeys(reads) {
		addDeps(d.read(id, base, base), d.outBytes[base])
	}
	for _, base := range sortedKeys(writes) {
		addDeps(d.write(id, base, base, 0), 0)
	}
	return nil
}

// collectAccesses walks a statement list and returns the base names read
// and written by its activations.
func (c *compiler) collectAccesses(body []Stmt, env map[string]int) (reads, writes map[string]bool) {
	reads = make(map[string]bool)
	writes = make(map[string]bool)
	var walk func(ss []Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *SeqStmt:
				walk(st.Body)
			case *LoopStmt:
				walk(st.Body)
			case *WhileStmt:
				walk(st.Body)
				if st.CondVar != "" {
					reads[st.CondVar] = true
				}
			case *CallStmt:
				decl, ok := c.prog.Tasks[st.Task]
				if !ok || len(st.Args) != len(decl.Params) {
					continue // reported later by emitCall
				}
				for i, p := range decl.Params {
					a := st.Args[i]
					if a.IsNum {
						continue
					}
					if _, isLoop := env[a.Name]; isLoop && a.Index == nil {
						continue
					}
					if _, isConst := c.prog.Consts[a.Name]; isConst && a.Index == nil {
						continue
					}
					if p.Access == In || p.Access == InOut {
						reads[a.Name] = true
					}
					if p.Access == Out || p.Access == InOut {
						writes[a.Name] = true
					}
				}
			}
		}
	}
	walk(body)
	return reads, writes
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
