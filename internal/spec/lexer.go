// Package spec implements a compiler front-end for a CM-task-style
// coordination language (Section 2.2 of the paper, Fig. 3): constants,
// M-task declarations with typed in/out/inout parameters and data
// distributions, and a main module whose body composes M-task activations
// with the operators seq, parfor, for and while. The compiler unrolls the
// counting loops, performs data-dependence analysis on the unrolled
// activations, and produces the hierarchical M-task graph (while loops
// become composed nodes whose body is a lower-level graph, as in Fig. 4),
// ready for the scheduling and mapping algorithms.
package spec

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single-character punctuation and operators
	tokEllipsis
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenises a specification source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("spec:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		var b strings.Builder
		for l.pos < len(l.src) {
			c := rune(l.src[l.pos])
			if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
				break
			}
			b.WriteByte(l.advance())
		}
		return token{kind: tokIdent, text: b.String(), line: line, col: col}, nil
	case unicode.IsDigit(rune(c)):
		var b strings.Builder
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if !unicode.IsDigit(rune(c)) && c != '.' && c != 'e' && c != 'E' {
				break
			}
			// "..." must not be eaten as part of a number.
			if c == '.' && strings.HasPrefix(l.src[l.pos:], "...") {
				break
			}
			b.WriteByte(l.advance())
		}
		return token{kind: tokNumber, text: b.String(), line: line, col: col}, nil
	case strings.HasPrefix(l.src[l.pos:], "..."):
		l.advance()
		l.advance()
		l.advance()
		return token{kind: tokEllipsis, text: "...", line: line, col: col}, nil
	case strings.ContainsRune("(){}[]:;,=<>+-*/", rune(c)):
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	default:
		return token{}, l.errorf(line, col, "unexpected character %q", c)
	}
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
