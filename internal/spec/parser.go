package spec

import (
	"fmt"
	"strconv"
)

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a specification source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{
		Consts: make(map[string]*ConstDecl),
		Tasks:  make(map[string]*TaskDecl),
	}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokIdent, "const"):
			c, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Consts[c.Name]; dup {
				return nil, p.errorf("constant %q redeclared", c.Name)
			}
			prog.Consts[c.Name] = c
		case p.at(tokIdent, "task"):
			t, err := p.taskDecl()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Tasks[t.Name]; dup {
				return nil, p.errorf("task %q redeclared", t.Name)
			}
			prog.Tasks[t.Name] = t
		case p.at(tokIdent, "cmmain"):
			if prog.Main != nil {
				return nil, p.errorf("duplicate cmmain")
			}
			m, err := p.mainDecl()
			if err != nil {
				return nil, err
			}
			prog.Main = m
		default:
			return nil, p.errorf("expected const, task or cmmain, found %s", p.cur())
		}
	}
	if prog.Main == nil {
		return nil, fmt.Errorf("spec: missing cmmain module")
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("spec:%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
		}
		return t, p.errorf("expected %s, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) number() (float64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errorf("malformed number %q", t.text)
	}
	return v, nil
}

// constDecl := "const" IDENT "=" (NUMBER | "...") ";"
func (p *parser) constDecl() (*ConstDecl, error) {
	p.pos++ // const
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	c := &ConstDecl{Name: name.text}
	if p.accept(tokEllipsis, "") {
		c.Known = false
	} else {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		c.Value, c.Known = v, true
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return c, nil
}

// param := IDENT ":" IDENT ":" access (":" IDENT)?
func (p *parser) param() (Param, error) {
	var pr Param
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return pr, err
	}
	pr.Name = name.text
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return pr, err
	}
	typ, err := p.expect(tokIdent, "")
	if err != nil {
		return pr, err
	}
	pr.Type = typ.text
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return pr, err
	}
	acc, err := p.expect(tokIdent, "")
	if err != nil {
		return pr, err
	}
	switch acc.text {
	case "in":
		pr.Access = In
	case "out":
		pr.Access = Out
	case "inout":
		pr.Access = InOut
	default:
		return pr, p.errorf("unknown access %q (want in, out or inout)", acc.text)
	}
	if p.accept(tokPunct, ":") {
		dist, err := p.expect(tokIdent, "")
		if err != nil {
			return pr, err
		}
		pr.Dist = dist.text
	}
	return pr, nil
}

func (p *parser) paramList() ([]Param, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []Param
	if !p.at(tokPunct, ")") {
		for {
			pr, err := p.param()
			if err != nil {
				return nil, err
			}
			params = append(params, pr)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return params, nil
}

// taskDecl := "task" IDENT params attrs ";"
// attrs := ("work" NUMBER | "comm" NUMBER | "out" NUMBER | "maxwidth" NUMBER)*
func (p *parser) taskDecl() (*TaskDecl, error) {
	p.pos++ // task
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	t := &TaskDecl{Name: name.text, Params: params}
	for p.at(tokIdent, "work") || p.at(tokIdent, "comm") || p.at(tokIdent, "out") || p.at(tokIdent, "maxwidth") {
		attr := p.cur().text
		p.pos++
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		switch attr {
		case "work":
			t.Work = v
		case "comm":
			t.Comm = int(v)
		case "out":
			t.Out = int(v)
		case "maxwidth":
			t.MaxWidth = int(v)
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return t, nil
}

// mainDecl := "cmmain" IDENT params block
func (p *parser) mainDecl() (*MainDecl, error) {
	p.pos++ // cmmain
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	m := &MainDecl{Name: name.text, Params: params}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for p.at(tokIdent, "var") {
		vd, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		m.Vars = append(m.Vars, vd)
	}
	body, err := p.stmtList()
	if err != nil {
		return nil, err
	}
	m.Body = body
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return nil, err
	}
	return m, nil
}

// varDecl := "var" IDENT ("," IDENT)* ":" IDENT ";"
func (p *parser) varDecl() (VarDecl, error) {
	var vd VarDecl
	p.pos++ // var
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return vd, err
		}
		vd.Names = append(vd.Names, name.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return vd, err
	}
	typ, err := p.expect(tokIdent, "")
	if err != nil {
		return vd, err
	}
	vd.Type = typ.text
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return vd, err
	}
	return vd, nil
}

// stmtList parses statements until the closing brace (not consumed).
func (p *parser) stmtList() ([]Stmt, error) {
	var body []Stmt
	for !p.at(tokPunct, "}") && !p.at(tokEOF, "") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	body, err := p.stmtList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return nil, err
	}
	return body, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at(tokIdent, "seq"):
		p.pos++
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &SeqStmt{Body: body}, nil
	case p.at(tokIdent, "parfor"), p.at(tokIdent, "for"):
		par := p.cur().text == "parfor"
		line := p.cur().line
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		v, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &LoopStmt{Var: v.text, Lo: lo, Hi: hi, Par: par, Body: body, Line: line}, nil
	case p.at(tokIdent, "while"):
		line := p.cur().line
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		// The condition is opaque: collect tokens to the closing
		// parenthesis, remembering the first identifier as the
		// steering variable.
		var condVar, condText string
		depth := 1
		for depth > 0 {
			t := p.cur()
			if t.kind == tokEOF {
				return nil, p.errorf("unterminated while condition")
			}
			if t.kind == tokPunct && t.text == "(" {
				depth++
			}
			if t.kind == tokPunct && t.text == ")" {
				depth--
				if depth == 0 {
					p.pos++
					break
				}
			}
			if t.kind == tokIdent && condVar == "" {
				condVar = t.text
			}
			condText += t.text + " "
			p.pos++
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{CondVar: condVar, CondText: condText, Body: body, Line: line}, nil
	case p.at(tokIdent, ""):
		// M-task activation.
		line := p.cur().line
		name, _ := p.expect(tokIdent, "")
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var args []*Expr
		if !p.at(tokPunct, ")") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &CallStmt{Task: name.text, Args: args, Line: line}, nil
	default:
		return nil, p.errorf("expected statement, found %s", p.cur())
	}
}

// expr := NUMBER | IDENT ("[" expr "]")?
func (p *parser) expr() (*Expr, error) {
	t := p.cur()
	if t.kind == tokNumber {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		return &Expr{IsNum: true, Num: v, Line: t.line}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	e := &Expr{Name: name.text, Line: t.line}
	if p.accept(tokPunct, "[") {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		e.Index = idx
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	return e, nil
}
