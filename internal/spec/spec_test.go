package spec

import (
	"strings"
	"testing"

	"mtask/internal/arch"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
)

// epolSpec is the paper's Fig. 3 specification of the extrapolation
// method, extended with the task declarations the paper omits.
const epolSpec = `
const R = 4;        // number of approximations
const Tend = ...;   // end of integration interval

task init_step(t:scalar:out, h:scalar:out) work 100;
task step(j:int:in, i:int:in, t:scalar:in, h:scalar:in,
          eta_k:vector:in:replic, v:vector:inout:block) work 28000 comm 8000;
task combine(t:scalar:inout, h:scalar:inout, V:Rvectors:in, eta_k:vector:inout:replic)
     work 50000 out 8000;

cmmain EPOL(eta_k:vector:inout:replic) {
  var t, h : scalar;
  var V : Rvectors;
  var i, j : int;
  seq {
    init_step(t, h);
    while (t < Tend) {
      seq {
        parfor (i = 1:R) {
          for (j = 1:i) {
            step(j, i, t, h, eta_k, V[i]);
          }
        }
        combine(t, h, V, eta_k);
      }
    }
  }
}
`

func TestCompileEPOLSpec(t *testing.T) {
	u, err := Compile(epolSpec)
	if err != nil {
		t.Fatal(err)
	}
	g := u.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Upper-level graph: init_step, the while node, start, stop.
	if g.Len() != 4 {
		t.Fatalf("upper graph has %d nodes, want 4:\n%v", g.Len(), names(g))
	}
	var while *graph.Task
	for _, task := range g.Tasks() {
		if task.Kind == graph.KindComposed {
			while = task
		}
	}
	if while == nil {
		t.Fatal("no composed while node")
	}
	if while.Sub == nil {
		t.Fatal("while node has no sub graph")
	}
	// Lower-level graph (Fig. 4): R(R+1)/2 = 10 micro steps + combine +
	// start + stop = 13 nodes.
	if while.Sub.Len() != 13 {
		t.Fatalf("while body has %d nodes, want 13:\n%v", while.Sub.Len(), names(while.Sub))
	}
	// The while node depends on init_step (reads t, h).
	deps := g.Pred(while.ID)
	foundInit := false
	for _, d := range deps {
		if strings.HasPrefix(g.Task(d).Name, "init_step") {
			foundInit = true
		}
	}
	if !foundInit {
		t.Fatal("while node does not depend on init_step")
	}
}

func names(g *graph.Graph) []string {
	var out []string
	for _, t := range g.Tasks() {
		out = append(out, t.Name)
	}
	return out
}

func TestCompiledBodyMatchesFig4(t *testing.T) {
	u, err := Compile(epolSpec)
	if err != nil {
		t.Fatal(err)
	}
	var sub *graph.Graph
	for _, task := range u.Graph.Tasks() {
		if task.Kind == graph.KindComposed {
			sub = task.Sub
		}
	}
	// Chain contraction must find the R = 4 approximation chains, then
	// layering gives 2 layers (chains, combine).
	res := graph.ContractChains(sub)
	if res.Graph.Len() != 4+1+2 {
		t.Fatalf("contracted body has %d nodes, want 7", res.Graph.Len())
	}
	layers := graph.Layers(res.Graph)
	if len(layers) != 2 || len(layers[0]) != 4 || len(layers[1]) != 1 {
		t.Fatalf("layers %v, want [4 tasks][1 task]", layers)
	}
	// Micro steps within a chain are linked j -> j+1; micro steps of
	// different chains are independent.
	find := func(name string) graph.TaskID {
		for _, task := range sub.Tasks() {
			if task.Name == name {
				return task.ID
			}
		}
		t.Fatalf("task %q not found in %v", name, names(sub))
		return graph.None
	}
	s21 := find("step(1,2,t,h,eta_k,V[2])")
	s22 := find("step(2,2,t,h,eta_k,V[2])")
	s31 := find("step(1,3,t,h,eta_k,V[3])")
	if !sub.Reachable(s21, s22) {
		t.Error("micro steps of chain 2 not ordered")
	}
	if !sub.Independent(s21, s31) {
		t.Error("chains 2 and 3 not independent")
	}
	c := find("combine(t,h,V,eta_k)")
	if !sub.Reachable(s22, c) || !sub.Reachable(s31, c) {
		t.Error("combine does not depend on the chains")
	}
}

func TestCompiledGraphSchedules(t *testing.T) {
	u, err := Compile(epolSpec)
	if err != nil {
		t.Fatal(err)
	}
	var sub *graph.Graph
	for _, task := range u.Graph.Tasks() {
		if task.Kind == graph.KindComposed {
			sub = task.Sub
		}
	}
	mach := arch.CHiC().Subset(8)
	model := &cost.Model{Machine: mach}
	s, err := (&core.Scheduler{Model: model}).Schedule(sub, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Layers) != 2 {
		t.Fatalf("schedule has %d layers, want 2", len(s.Layers))
	}
}

func TestParforDependenceRejected(t *testing.T) {
	src := `
task t1(x:vector:inout) work 10;
cmmain M(x:vector:inout:replic) {
  var i : int;
  parfor (i = 1:3) {
    t1(x);
  }
}
`
	_, err := Compile(src)
	if err == nil || !strings.Contains(err.Error(), "parfor") {
		t.Fatalf("cross-iteration dependence not rejected: %v", err)
	}
	// The same loop as "for" is fine.
	srcFor := strings.Replace(src, "parfor", "for", 1)
	if _, err := Compile(srcFor); err != nil {
		t.Fatalf("for loop rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing cmmain":     `const R = 4;`,
		"undeclared task":    `cmmain M(x:vector:in) { foo(x); }`,
		"bad access":         `task t(x:vector:frobnicate) work 1; cmmain M(x:vector:in) { t(x); }`,
		"arg count":          `task t(x:vector:in, y:vector:in) work 1; cmmain M(x:vector:in) { t(x); }`,
		"unknown const":      `task t(x:int:in) work 1; cmmain M(y:vector:in) { var i:int; for (i = 1:Q) { t(i); } }`,
		"ellipsis bound":     `const Q = ...; task t(x:int:in) work 1; cmmain M(y:vector:in) { var i:int; for (i = 1:Q) { t(i); } }`,
		"duplicate main":     `cmmain M(x:vector:in) { } cmmain N(x:vector:in) { }`,
		"duplicate const":    `const R = 1; const R = 2; cmmain M(x:vector:in) { }`,
		"shadowed loop var":  `task t(x:int:in) work 1; cmmain M(y:vector:in) { var i:int; for (i = 1:2) { for (i = 1:2) { t(i); } } }`,
		"garbage":            `const @;`,
		"unterminated while": `cmmain M(x:vector:in) { while (x < `,
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: compile succeeded unexpectedly", name)
		}
	}
}

func TestSeqOrderingViaData(t *testing.T) {
	// Two writers of the same variable serialize; independent data
	// stays parallel.
	src := `
task w(x:vector:out) work 10 out 100;
task r(x:vector:in, y:vector:out) work 10 out 100;
cmmain M(a:vector:inout:replic) {
  var b, c, d : vector;
  seq {
    w(b);
    r(b, c);
    w(d);
  }
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := u.Graph
	find := func(prefix string) graph.TaskID {
		for _, task := range g.Tasks() {
			if strings.HasPrefix(task.Name, prefix) {
				return task.ID
			}
		}
		t.Fatalf("no task %q", prefix)
		return graph.None
	}
	wb := find("w(b)")
	rbc := find("r(b,c)")
	wd := find("w(d)")
	if !g.Reachable(wb, rbc) {
		t.Error("reader does not depend on writer")
	}
	if !g.Independent(wb, wd) || !g.Independent(rbc, wd) {
		t.Error("independent writers were serialized")
	}
	// Edge carries the producer's output size.
	if got := g.EdgeBytes(wb, rbc); got != 100 {
		t.Errorf("edge bytes = %d, want 100", got)
	}
}

func TestOutputDependence(t *testing.T) {
	// Consecutive writers of the same data are ordered (output
	// dependence keeps "last writer" well defined); the intervening
	// reader only depends on the first writer — the paper's M-task
	// graphs contain input-output relations, not anti-dependences,
	// because the generated program renames data instances.
	src := `
task w(x:vector:out) work 10;
task r(x:vector:in) work 10;
cmmain M(a:vector:inout:replic) {
  var b : vector;
  seq {
    w(b);
    r(b);
    w(b);
  }
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := u.Graph
	// Tasks 0,1,2 are w, r, w in order.
	if !g.Reachable(0, 1) {
		t.Fatalf("flow dependence missing: edges %v", g.Edges())
	}
	if !g.Reachable(0, 2) {
		t.Fatalf("output dependence missing: edges %v", g.Edges())
	}
}

func TestIndexedInstances(t *testing.T) {
	// Writing V[1] and V[2] independently, then reading whole V.
	src := `
task w(i:int:in, v:vector:out) work 10 out 50;
task r(V:Rvectors:in) work 10;
cmmain M(a:vector:in) {
  var V : Rvectors;
  var i : int;
  seq {
    parfor (i = 1:2) {
      w(i, V[i]);
    }
    r(V);
  }
}
`
	u, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	g := u.Graph
	// w(1,V[1]), w(2,V[2]) independent; r depends on both.
	if !g.Independent(0, 1) {
		t.Error("writers of different instances serialized")
	}
	if !g.Reachable(0, 2) || !g.Reachable(1, 2) {
		t.Error("whole-array reader independent of instance writers")
	}
}

func TestCompileCostAnnotations(t *testing.T) {
	u, err := Compile(epolSpec)
	if err != nil {
		t.Fatal(err)
	}
	var sub *graph.Graph
	for _, task := range u.Graph.Tasks() {
		if task.Kind == graph.KindComposed {
			sub = task.Sub
		}
	}
	for _, task := range sub.Tasks() {
		if strings.HasPrefix(task.Name, "step(") {
			if task.Work != 28000 || task.CommBytes != 8000 || task.CommCount != 1 {
				t.Fatalf("step task costs wrong: %+v", task)
			}
		}
		if strings.HasPrefix(task.Name, "combine(") {
			if task.OutBytes != 8000 {
				t.Fatalf("combine out bytes = %d", task.OutBytes)
			}
		}
	}
}

func TestLexerNumbersAndComments(t *testing.T) {
	toks, err := lexAll("const X = 42; // answer\nconst Y = 1e3;")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tok := range toks {
		if tok.kind == tokNumber {
			nums = append(nums, tok.text)
		}
	}
	if len(nums) != 2 || nums[0] != "42" || nums[1] != "1e3" {
		t.Fatalf("numbers %v", nums)
	}
}
