// Package mtask is a Go implementation of the M-task (multiprocessor-task)
// programming model with combined scheduling and mapping for hierarchical
// multi-core clusters, reproducing Dümmler, Rauber and Rünger: "Scalable
// computing with parallel tasks" (SC/MTAGS 2009) and its journal version
// "Combined scheduling and mapping for scalable computing with parallel
// tasks" (Scientific Programming 20, 2012).
//
// An M-task is a parallel task executable by an arbitrary group of cores;
// a program is a DAG of M-tasks connected by input-output relations. The
// primary entry point is the Planner engine:
//
//	mp, err := mtask.Plan(ctx, g, machine)                  // defaults
//	mp, err := mtask.Plan(ctx, g, machine,
//	    mtask.WithStrategy(mtask.Scattered{}),
//	    mtask.WithCores(64),
//	    mtask.WithParallelism(8))
//
// Plan runs the paper's combined scheduling and mapping — the layer-based
// group-count search of Algorithm 1 followed by the architecture-aware
// mapping step — concurrently on a bounded worker pool, memoizes the cost
// model evaluations, and serves repeated requests from an LRU schedule
// cache, while staying bit-identical to the sequential reference path.
// Cancellation and deadlines of ctx are honoured throughout scheduling,
// mapping and simulation. Failures wrap the sentinel errors
// ErrInvalidMachine, ErrCyclicGraph, ErrNoCores and ErrCanceled for
// errors.Is dispatch.
//
// The library further provides:
//
//   - M-task graphs with linear-chain contraction and layer partitioning
//     (Graph, Task);
//   - the layer-based scheduling algorithm with group-count search, LPT
//     assignment and group-size adjustment (Scheduler, Schedule), plus the
//     CPA and CPR baselines in internal/baseline;
//   - architecture descriptions of hierarchical clusters and the
//     consecutive/scattered/mixed mapping strategies (Machine, Strategy,
//     Map);
//   - a communication cost model and a deterministic cluster simulator
//     (CostModel, Simulate) that replace the paper's physical testbeds;
//   - a goroutine-based runtime executing M-task programs in shared
//     memory with instrumented group communicators (World, Execute);
//   - a compiler front-end for a CM-task-style coordination language
//     (CompileSpec);
//   - the paper's workloads: five parallel ODE solvers (internal/ode) and
//     an NPB-multi-zone-style benchmark (internal/nas), with experiment
//     runners for every table and figure of the evaluation
//     (RunExperiment);
//   - planning as a service: JSON codecs for graphs and machines
//     (MarshalGraphJSON, UnmarshalMachineJSON, ...) and the multi-tenant
//     mtaskd HTTP handler with quota admission, a sharded schedule cache
//     and request coalescing (ServeHandler; see docs/SERVING.md);
//   - a two-level machine scheduler admitting a stream of moldable,
//     malleable M-task jobs: partition sizing from the planner's speedup
//     model, EASY-style backfill with a starvation guard, and grow/shrink
//     of running jobs at layer barriers (JobAllocator; see
//     docs/SCHEDULING.md).
//
// See README.md for a tour and EXPERIMENTS.md for the paper-vs-measured
// record.
package mtask

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mtask/internal/arch"
	"mtask/internal/bench"
	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/dynsched"
	"mtask/internal/fault"
	"mtask/internal/graph"
	"mtask/internal/obs"
	"mtask/internal/plan"
	"mtask/internal/redist"
	"mtask/internal/runtime"
	"mtask/internal/serve"
	"mtask/internal/spec"
)

// --- sentinel errors ---

// Sentinel errors returned (wrapped) by the planning pipeline; test with
// errors.Is.
var (
	// ErrInvalidMachine reports a malformed machine description.
	ErrInvalidMachine = arch.ErrInvalidMachine
	// ErrCyclicGraph reports a cyclic M-task graph.
	ErrCyclicGraph = graph.ErrCyclicGraph
	// ErrNoCores reports a schedule or mapping requested on fewer cores
	// than it needs.
	ErrNoCores = core.ErrNoCores
	// ErrCanceled reports that planning or simulation was abandoned
	// because the context was canceled or timed out.
	ErrCanceled = core.ErrCanceled
	// ErrQuotaExceeded reports a serving request rejected by its tenant's
	// token-bucket quota (the HTTP handler answers it with 429).
	ErrQuotaExceeded = serve.ErrQuotaExceeded
)

// --- architecture ---

// Machine describes a hierarchical multi-core cluster (nodes, processors
// per node, cores per processor, per-level interconnect performance).
type Machine = arch.Machine

// CoreID identifies a physical core by node, processor and core index.
type CoreID = arch.CoreID

// CHiC returns the paper's Chemnitz High Performance Linux cluster preset.
func CHiC() *Machine { return arch.CHiC() }

// SGIAltix returns the paper's SGI Altix partition preset.
func SGIAltix() *Machine { return arch.SGIAltix() }

// JuRoPA returns the paper's JuRoPA cluster preset.
func JuRoPA() *Machine { return arch.JuRoPA() }

// --- graphs ---

// Graph is an M-task graph: a DAG of M-tasks with input-output relations.
type Graph = graph.Graph

// Task is one M-task node of a Graph.
type Task = graph.Task

// TaskID identifies a task within a graph.
type TaskID = graph.TaskID

// NewGraph returns an empty named M-task graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// --- cost model, scheduling and mapping ---

// CostModel evaluates computation and communication costs on a Machine.
type CostModel = cost.Model

// Scheduler runs the paper's layer-based scheduling algorithm.
type Scheduler = core.Scheduler

// Schedule is a layered schedule of an M-task graph on symbolic cores.
type Schedule = core.Schedule

// Strategy is a mapping strategy ordering the physical cores.
type Strategy = core.Strategy

// Consecutive maps cores of the same node to adjacent positions.
type Consecutive = core.Consecutive

// Scattered maps corresponding cores of different nodes to adjacent
// positions.
type Scattered = core.Scattered

// Mixed maps blocks of D consecutive cores per node.
type Mixed = core.Mixed

// Mapping is the physical realization of a Schedule on a Machine.
type Mapping = core.Mapping

// StrategyByName returns the named mapping strategy: "consecutive",
// "scattered" or "mixed:<d>".
func StrategyByName(name string) (Strategy, error) { return core.StrategyByName(name) }

// Map assigns the symbolic cores of a schedule to physical cores.
func Map(s *Schedule, m *Machine, strat Strategy) (*Mapping, error) {
	return core.Map(s, m, strat)
}

// --- planning (the primary API) ---

// Planner is a concurrent, cache-backed scheduling engine; see Plan.
type Planner = plan.Planner

// PlanOption configures one Plan request (or a Planner's defaults).
type PlanOption = plan.Option

// WithStrategy selects the mapping strategy (default Consecutive).
func WithStrategy(s Strategy) PlanOption { return plan.WithStrategy(s) }

// WithCores schedules on p symbolic cores instead of the whole machine.
func WithCores(p int) PlanOption { return plan.WithCores(p) }

// WithCostModel overrides the cost model (e.g. hybrid MPI+OpenMP).
func WithCostModel(m *CostModel) PlanOption { return plan.WithCostModel(m) }

// WithParallelism sets the worker count of the group-count search;
// WithParallelism(1) forces the sequential reference path and 0 (the
// default) uses GOMAXPROCS workers.
func WithParallelism(n int) PlanOption { return plan.WithParallelism(n) }

// WithGroupBounds bounds the per-layer group-count search to [min, max]
// (0 = unbounded on that side).
func WithGroupBounds(min, max int) PlanOption { return plan.WithGroupBounds(min, max) }

// WithForceGroups pins the group count of every layer: 1 yields the
// data-parallel schedule, a large value the maximally task-parallel one.
func WithForceGroups(g int) PlanOption { return plan.WithForceGroups(g) }

// WithoutCache bypasses the schedule cache for this request.
func WithoutCache() PlanOption { return plan.WithoutCache() }

// WithoutMemo disables cost-model memoization for this request.
func WithoutMemo() PlanOption { return plan.WithoutMemo() }

// WithoutIncremental disables layer-granular schedule reuse (incremental
// replanning) for this request: the cold plan searches every layer from
// scratch and records nothing in the planner's family index.
func WithoutIncremental() PlanOption { return plan.WithoutIncremental() }

// WithPlanTrace attaches a trace recorder to a Plan request: the request
// span, the per-layer g-search timings, cache hit/miss counters and
// cost-model memoization statistics are recorded on the recorder's
// control track. Tracing never alters planning decisions.
func WithPlanTrace(rec *TraceRecorder) PlanOption { return plan.WithTrace(rec) }

// PlanInfo reports how one Plan request was served: from the schedule
// cache, coalesced onto a concurrent identical request, cold, or cold with
// incremental layer reuse (see plan.Info).
type PlanInfo = plan.Info

// WithPlanInfo fills *i with how the request was served.
func WithPlanInfo(i *PlanInfo) PlanOption { return plan.WithInfo(i) }

// NewPlanner returns a dedicated Planner whose defaults are the given
// options and whose schedule cache is private. Use it when request streams
// should not share the process-wide default cache.
func NewPlanner(opts ...PlanOption) *Planner { return plan.New(opts...) }

// defaultPlanner serves mtask.Plan; all Plan calls of a process share its
// schedule cache, which is what makes repeated identical requests cheap.
var defaultPlanner = plan.New()

// Plan is the combined scheduling and mapping of the paper behind a
// context-aware engine: it schedules the graph with the layer-based
// algorithm (the per-layer group-count search runs on a worker pool, with
// memoized cost evaluations and deterministic tie-breaking, so the result
// is bit-identical to the sequential path), maps the symbolic cores with
// the configured strategy, and caches the finished mapping keyed by graph
// and machine fingerprints. Canceling ctx aborts the search with an error
// wrapping ErrCanceled.
//
// The returned mapping may be served from the cache and shared with other
// callers; treat it as read-only.
func Plan(ctx context.Context, g *Graph, m *Machine, opts ...PlanOption) (*Mapping, error) {
	return defaultPlanner.Plan(ctx, g, m, opts...)
}

// --- serving ---

// ServeOption configures ServeHandler (and NewPlanServer underneath):
// quota, cache geometry, recorder, body limits.
type ServeOption = serve.Option

// ServeTenantHeader is the HTTP request header naming the tenant for
// quota accounting; absent or empty means the "default" tenant.
const ServeTenantHeader = serve.TenantHeader

// ServeDeadlineHeader is the HTTP request header carrying the client's
// per-request deadline as a Go duration (e.g. "250ms"); it propagates
// as a context deadline through admission, planning and encoding, and
// expiry anywhere along the way answers 504 deadline_exceeded.
const ServeDeadlineHeader = serve.DeadlineHeader

// ServeAdmissionConfig configures WithServeAdmission: the adaptive
// (AIMD) global concurrency limit, its latency target, and the bounded
// wait queue in front of it.
type ServeAdmissionConfig = serve.AdmissionConfig

// WithServeAdmission puts an adaptive global concurrency limit in front
// of the per-tenant quotas: at most limit requests plan at once, excess
// requests wait in a bounded FIFO queue, and overflow is shed with HTTP
// 503 and a Retry-After hint. The limit tracks observed request latency
// (AIMD) between cfg.MinLimit and cfg.MaxLimit. The zero config takes
// the serve package defaults.
func WithServeAdmission(cfg ServeAdmissionConfig) ServeOption {
	return serve.WithAdmission(cfg)
}

// WithServeDegraded serves a stale cached plan for the same
// (graph, machine, strategy, cores) family — flagged "degraded": true —
// when a cold plan exceeds after, instead of making the client wait out
// the full planning time. capacity bounds the stale-plan store
// (0 = default). after <= 0 disables degradation.
func WithServeDegraded(after time.Duration, capacity int) ServeOption {
	return serve.WithDegraded(after, capacity)
}

// WithServeQuota enforces a per-tenant token bucket of ratePerSec
// requests per second with the given burst; rate <= 0 disables quotas.
// Rejected requests get HTTP 429 with an error wrapping ErrQuotaExceeded
// semantics (code "quota_exceeded").
func WithServeQuota(ratePerSec float64, burst int) ServeOption {
	return serve.WithQuota(ratePerSec, burst)
}

// WithServeCache sets the handler's sharded schedule cache geometry:
// total capacity in mappings and the shard count (0 picks the defaults).
func WithServeCache(capacity, shards int) ServeOption {
	return serve.WithCache(capacity, shards)
}

// WithServeRecorder attaches a trace recorder to the handler; serving
// counters (serve.requests, serve.coalesced, serve.rejected, per-shard
// cache traffic) land on it and are exported by GET /metricz.
func WithServeRecorder(rec *TraceRecorder) ServeOption {
	return serve.WithRecorder(rec)
}

// ServeHandler returns the planning-as-a-service HTTP handler served by
// cmd/mtaskd: POST /v1/plan and POST /v1/simulate take a JSON graph,
// machine and options and return the planned mapping summary or the
// simulated timing; GET /healthz, GET /readyz and GET /metricz expose
// liveness, readiness and the serving metrics. The handler is
// multi-tenant (ServeTenantHeader), admission-controlled
// (WithServeAdmission, WithServeQuota), deadline-aware
// (ServeDeadlineHeader), backed by a fingerprint-sharded schedule
// cache, and coalesces concurrent identical cold plans into one planner
// invocation. See docs/SERVING.md for the wire format and the overload
// and degradation behaviour.
func ServeHandler(opts ...ServeOption) http.Handler {
	return serve.New(opts...).Handler()
}

// --- JSON codecs ---

// MarshalGraphJSON encodes an M-task graph in the serving wire form:
// tasks in insertion order (edges by task index), composed tasks with
// their subgraphs inline. The encoding round-trips through
// UnmarshalGraphJSON bit-identically fingerprint-wise.
func MarshalGraphJSON(g *Graph) ([]byte, error) { return json.Marshal(g) }

// UnmarshalGraphJSON decodes a graph encoded by MarshalGraphJSON,
// re-validating every task and edge (unknown task references, self
// edges and malformed kinds are rejected).
func UnmarshalGraphJSON(data []byte) (*Graph, error) {
	g := new(graph.Graph)
	if err := json.Unmarshal(data, g); err != nil {
		return nil, err
	}
	return g, nil
}

// MarshalMachineJSON encodes a machine description as JSON.
func MarshalMachineJSON(m *Machine) ([]byte, error) { return json.Marshal(m) }

// UnmarshalMachineJSON decodes and validates a machine description
// (errors wrap ErrInvalidMachine).
func UnmarshalMachineJSON(data []byte) (*Machine, error) {
	m := new(arch.Machine)
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// --- simulation ---

// SimResult is the outcome of a cluster simulation.
type SimResult = cluster.Result

// Simulate executes the mapped schedule on the deterministic cluster
// simulator and returns the predicted timing.
func Simulate(mp *Mapping) (*SimResult, error) {
	return SimulateCtx(context.Background(), mp)
}

// SimulateCtx is Simulate with cooperative cancellation (errors wrap
// ErrCanceled).
func SimulateCtx(ctx context.Context, mp *Mapping) (*SimResult, error) {
	model := (&cost.Model{Machine: mp.Machine}).WithMemo()
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		return nil, err
	}
	return cluster.SimulateCtx(ctx, model, prog)
}

// --- goroutine runtime ---

// World is a set of symbolic cores realised as goroutines.
type World = runtime.World

// Comm is a communicator handle of one core.
type Comm = runtime.Comm

// TaskCtx is the execution context of an M-task body.
type TaskCtx = runtime.TaskCtx

// TaskFunc is the SPMD body of an M-task.
type TaskFunc = runtime.TaskFunc

// NewWorld returns a world of p goroutine cores.
func NewWorld(p int) (*World, error) { return runtime.NewWorld(p) }

// Execute runs a schedule on the world with real task bodies.
func Execute(w *World, sched *Schedule, body func(t *Task) TaskFunc) error {
	return runtime.Execute(w, sched, body)
}

// --- fault tolerance ---

// FaultPolicy is the retry/backoff/timeout/escalation policy of the
// fault-tolerant executor.
type FaultPolicy = fault.Policy

// FaultInjector injects deterministic failures into task attempts (for
// tests and chaos runs).
type FaultInjector = fault.Injector

// FaultScript is one scripted injection: fail a named task on a given
// attempt.
type FaultScript = fault.Script

// FaultKind classifies an injected failure.
type FaultKind = fault.Kind

// Injectable failure kinds for FaultScript and Injector decisions.
const (
	FaultError    = fault.Error
	FaultPanic    = fault.Panic
	FaultDelay    = fault.Delay
	FaultCoreLoss = fault.CoreLoss
)

// DefaultFaultPolicy returns a moderate retry policy (3 retries,
// exponential backoff, 30s per-attempt timeout, no degrade-and-replan).
func DefaultFaultPolicy() FaultPolicy { return fault.DefaultPolicy() }

// Fault-tolerance sentinels; test with errors.Is.
var (
	// ErrInjected marks failures produced by a FaultInjector.
	ErrInjected = fault.ErrInjected
	// ErrCoreLost marks permanent core-group loss (not retryable;
	// triggers degrade-and-replan when enabled).
	ErrCoreLost = fault.ErrCoreLost
	// ErrCommAborted marks collectives failed by a communicator abort.
	ErrCommAborted = runtime.ErrCommAborted
	// ErrNoSubSchedule reports a composed task without a sub-schedule.
	ErrNoSubSchedule = runtime.ErrNoSubSchedule
)

// PanicError is a panic recovered from a task body, with the panicking
// goroutine's stack.
type PanicError = runtime.PanicError

// Report records the fault-tolerance history of one execution.
type Report = runtime.Report

// ExecOption configures ExecuteCtx.
type ExecOption = runtime.ExecOption

// Replanner produces a schedule for the surviving cores after a core
// group is lost (see ReplannerFor for the standard implementation).
type Replanner = runtime.Replanner

// WithFaultPolicy sets the retry/timeout policy of an ExecuteCtx run.
func WithFaultPolicy(p FaultPolicy) ExecOption { return runtime.WithPolicy(p) }

// WithFaultInjector installs a failure injector into an ExecuteCtx run.
func WithFaultInjector(in *FaultInjector) ExecOption { return runtime.WithInjector(in) }

// WithReplanner installs the degrade-and-replan callback.
func WithReplanner(r Replanner) ExecOption { return runtime.WithReplanner(r) }

// WithWavefront switches ExecuteCtx from layer-synchronous execution to
// dependence-driven (wavefront) execution: a task launches as soon as its
// graph predecessors completed and its group's cores were released by
// their prior-layer occupants, with no global layer join. Results are
// bitwise identical to the layered mode; bodies must not use
// TaskCtx.Global (rejected with an error matching ErrGlobalInWavefront).
func WithWavefront() ExecOption { return runtime.WithWavefront() }

// ErrGlobalInWavefront marks a task body that touched TaskCtx.Global
// under WithWavefront.
var ErrGlobalInWavefront = runtime.ErrGlobalInWavefront

// WithoutTimeline drops O(tasks) state from the Report so million-task
// executions stay lean: successful attempts fold into a busy core-time
// accumulator instead of retained TaskSpans, and per-task histories are
// kept only for tasks that needed fault handling. One caveat: a task
// that never fails but re-executes after a degrade-and-replan reports
// attempt number 1 on the re-execution too (the full report would say 2),
// so fault-injection scripts keyed on attempt numbers across a replan
// need the full report.
func WithoutTimeline() ExecOption { return runtime.WithoutTimeline() }

// Resizer lets the caller swap in a schedule of a different core count at
// every layer barrier (voluntary malleability, as opposed to the
// failure-driven Replanner). Return (nil, nil) to keep the current
// schedule. The new schedule must keep the layer partition and fit the
// world; see docs/SCHEDULING.md.
type Resizer = runtime.Resizer

// WithResizer installs the layer-barrier resize hook used by the
// machine-level job allocator to grow and shrink running jobs.
func WithResizer(r Resizer) ExecOption { return runtime.WithResizer(r) }

// ErrResizeInWavefront marks WithResizer combined with WithWavefront:
// wavefront runs have no layer barriers, so they are moldable (sized at
// admission) but not malleable.
var ErrResizeInWavefront = runtime.ErrResizeInWavefront

// WithChannelDispatcher selects the reference channel-based wavefront
// dispatcher (one goroutine per launched task) instead of the default
// persistent-worker dispatcher. Kept for differential testing and
// dispatch-overhead comparisons; production runs should not need it.
func WithChannelDispatcher() ExecOption { return runtime.WithChannelDispatcher() }

// TaskSpan is one Report timeline entry: which task ran on which layer,
// group and core count, and when (offsets from the start of execution).
type TaskSpan = runtime.TaskSpan

// --- observability ---

// TraceRecorder is the unified event recorder of internal/obs: per-rank
// ring-buffered span/instant/counter events with a monotonic clock, a
// lock-free hot path, and exact drop accounting. A nil recorder is a
// valid no-op recorder. Read it (Events, Metrics, Gantt, WriteChrome)
// only after the traced run returned.
type TraceRecorder = obs.Recorder

// TraceEvent is one recorded observation of a TraceRecorder.
type TraceEvent = obs.Event

// NewTraceRecorder returns a recorder with one event timeline per rank
// in [0, ranks) plus a control timeline for run-level events (planner
// spans, scheduler decisions, fault instants).
func NewTraceRecorder(ranks int, opts ...TraceOption) *TraceRecorder {
	return obs.New(ranks, opts...)
}

// TraceOption configures NewTraceRecorder.
type TraceOption = obs.Option

// WithTraceCapacity sets the per-rank event ring capacity (default
// obs.DefaultCapacity = 16384). Events beyond it are dropped, never
// overwritten; TraceRecorder.Drops counts them exactly.
func WithTraceCapacity(n int) TraceOption { return obs.WithCapacity(n) }

// WithTraceName labels the recorder; the Chrome exporter uses it as the
// process name.
func WithTraceName(s string) TraceOption { return obs.WithName(s) }

// WithTrace attaches a trace recorder to an ExecuteCtx run: every rank
// records its task-attempt spans, barrier-wait spans and per-collective
// counters on its own timeline, and the executor adds retry, replan and
// layer-completion events. The recorder needs at least sched.P rank
// timelines. Export with WriteChromeTrace (Perfetto / chrome://tracing),
// TraceRecorder.Gantt, or inspect TraceRecorder.Metrics.
func WithTrace(rec *TraceRecorder) ExecOption { return runtime.WithRecorder(rec) }

// WriteChromeTrace writes the recorders' events as Chrome trace_event
// JSON, loadable in Perfetto (https://ui.perfetto.dev) and
// chrome://tracing; each recorder becomes one process, each rank one
// named thread. Call only after the traced runs returned.
func WriteChromeTrace(w io.Writer, recs ...*TraceRecorder) error {
	return obs.WriteChrome(w, recs...)
}

// Precedence is the precomputed dependence metadata of a schedule (the
// wavefront executor's launch conditions); see PrecedenceOf.
type Precedence = core.Precedence

// PrecedenceOf derives per-task predecessor sets and per-rank occupancy
// chains from a layered schedule.
func PrecedenceOf(s *Schedule) (*Precedence, error) { return core.PrecedenceOf(s) }

// ExecuteCtx is the fault-tolerant Execute: it recovers panics in task
// bodies into errors (with stack capture), aborts group communicators of
// failed tasks so peers cannot deadlock in collectives, enforces the
// policy's timeouts, retries failed tasks with exponential backoff, and —
// with FaultPolicy.DegradeAndReplan and a Replanner — recovers from
// permanent core loss by replanning on the surviving cores and resuming
// from the last completed layer barrier. Task bodies must be idempotent
// (they may re-run on retry or after a replan).
func ExecuteCtx(ctx context.Context, w *World, sched *Schedule, body func(t *Task) TaskFunc,
	opts ...ExecOption) (*Report, error) {
	return runtime.ExecuteCtx(ctx, w, sched, body, opts...)
}

// ReplannerFor returns the standard Replanner: it replans the graph with
// the planner on the machine shrunk to the survivors (whole nodes; see
// Machine.WithoutCores), preserving the layer partition. Pass it to
// ExecuteCtx via WithReplanner.
func ReplannerFor(p *Planner, g *Graph, m *Machine, opts ...PlanOption) Replanner {
	return func(ctx context.Context, survivors int) (*Schedule, error) {
		mp, err := p.Replan(ctx, g, m, survivors, opts...)
		if err != nil {
			return nil, err
		}
		return mp.Schedule, nil
	}
}

// --- specification language ---

// SpecUnit is a compiled CM-task specification.
type SpecUnit = spec.Unit

// CompileSpec compiles a CM-task-style specification source into its
// hierarchical M-task graph.
func CompileSpec(src string) (*SpecUnit, error) { return spec.Compile(src) }

// --- experiments ---

// ExperimentTable is one table/figure regenerated from the paper.
type ExperimentTable = bench.Table

// RunExperiment regenerates a paper artifact by id ("table1", "fig13" ...
// "fig19", "ablation"); ExperimentIDs lists the valid ids.
func RunExperiment(id string) ([]*ExperimentTable, error) { return bench.Run(id) }

// ExperimentIDs returns the available experiment ids.
func ExperimentIDs() []string { return bench.ExperimentIDs() }

// --- hierarchical and dynamic scheduling ---

// HierarchicalSchedule schedules hierarchical graphs (composed nodes with
// body graphs) recursively.
type HierarchicalSchedule = core.HierarchicalSchedule

// DynTask is a dynamically created M-task (Tlib-style).
type DynTask = dynsched.Task

// DynCtx is the context of a dynamic M-task; DynCtx.SplitRun splits the
// group recursively.
type DynCtx = dynsched.Ctx

// DynPool schedules M-tasks with core requirements dynamically onto free
// cores.
type DynPool = dynsched.Pool

// RunDynamic executes a dynamic root task on all cores of the world.
func RunDynamic(w *World, root DynTask) error { return dynsched.Run(w, root) }

// NewDynPool returns a dynamic pool over p cores.
func NewDynPool(p int) (*DynPool, error) { return dynsched.NewPool(p) }

// --- multi-job machine scheduling ---

// JobAllocator is the two-level machine scheduler: it admits a stream of
// M-task jobs, carves an initial whole-node partition per job from the
// planner's moldable speedup model, runs each job's layer schedule inside
// its partition, and grows or shrinks running jobs at layer barriers as
// the mix changes (EASY-style backfill with a bounded-bypass starvation
// guard). See docs/SCHEDULING.md for policies and invariants.
type JobAllocator = dynsched.Allocator

// MachineJob is one M-task job submitted to a JobAllocator: a graph, its
// SPMD task bodies, and node bounds (Rigid jobs are never resized).
type MachineJob = dynsched.Job

// JobResult is the outcome of one job: partition history (initial/final
// nodes, every resize), queueing record (backfilled, bypass count), the
// execution Report, and the error if the job failed.
type JobResult = dynsched.JobResult

// JobResizeEvent records one applied grow or shrink of a running job.
type JobResizeEvent = dynsched.ResizeEvent

// NewJobAllocator returns a two-level scheduler over the machine backed
// by the planner (backfill enabled). Configure the exported fields
// (Backfill, MaxBypass, EfficiencyFloor, Trace, ...) before the first
// Submit or RunTrace.
func NewJobAllocator(m *Machine, p *Planner) (*JobAllocator, error) {
	return dynsched.NewAllocator(m, p)
}

// --- re-distribution planning ---

// RedistLayout describes a data distribution over a core group.
type RedistLayout = redist.Layout

// RedistPlan is the message set of one compiler-inserted re-distribution.
type RedistPlan = redist.Plan

// PlanRedistribution computes the point-to-point messages moving data from
// one distribution to another (the paper's TRe operations).
func PlanRedistribution(src, dst RedistLayout) (*RedistPlan, error) {
	return redist.NewPlan(src, dst)
}

// RenderGantt renders a simulated mapping as a text Gantt chart.
func RenderGantt(mp *Mapping, width int) (string, error) {
	model := (&cost.Model{Machine: mp.Machine}).WithMemo()
	prog, _, err := cluster.FromMapping(model, mp)
	if err != nil {
		return "", err
	}
	res, err := cluster.Simulate(model, prog)
	if err != nil {
		return "", err
	}
	return cluster.RenderGantt(prog, res, width), nil
}

// Version is the library version.
const Version = "1.0.0"

// Describe returns a one-line summary of a mapping for logs and examples.
func Describe(mp *Mapping) string {
	return fmt.Sprintf("%q on %s (%d cores, %d layers, %s mapping)",
		mp.Schedule.Source.Name, mp.Machine.Name, mp.Schedule.P,
		len(mp.Schedule.Layers), mp.Strategy.Name())
}
