package mtask

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// buildDemoGraph builds a small fork-join M-task graph through the public
// API.
func buildDemoGraph() *Graph {
	g := NewGraph("demo")
	split := g.AddTask(&Task{Name: "split", Work: 1e9, OutBytes: 1 << 20})
	var mids []TaskID
	for i := 0; i < 4; i++ {
		id := g.AddTask(&Task{Name: "work", Work: 4e9, CommBytes: 1 << 22, CommCount: 8, OutBytes: 1 << 20})
		g.MustEdge(split, id, 1<<20)
		mids = append(mids, id)
	}
	join := g.AddTask(&Task{Name: "join", Work: 1e9})
	for _, id := range mids {
		g.MustEdge(id, join, 1<<20)
	}
	return g
}

func TestPlanDemoEndToEnd(t *testing.T) {
	g := buildDemoGraph()
	m := CHiC().Subset(16)
	mp, err := Plan(context.Background(), g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if !strings.Contains(Describe(mp), "demo") {
		t.Fatalf("Describe = %q", Describe(mp))
	}
	// The comm-heavy middle layer should be task parallel.
	if mp.Schedule.MaxGroups() < 2 {
		t.Fatalf("expected task parallelism, got %d groups", mp.Schedule.MaxGroups())
	}
}

func TestPlanInvalidMachine(t *testing.T) {
	g := buildDemoGraph()
	bad := &Machine{Name: "bad"}
	if _, err := Plan(context.Background(), g, bad); !errors.Is(err, ErrInvalidMachine) {
		t.Fatalf("invalid machine: got %v, want ErrInvalidMachine", err)
	}
}

// TestPlanEndToEnd drives the primary Plan API: options, cache behaviour,
// cache/cold-path agreement, and simulation.
func TestPlanEndToEnd(t *testing.T) {
	g := buildDemoGraph()
	m := CHiC().Subset(16)
	ctx := context.Background()

	mp, err := Plan(ctx, g, m, WithStrategy(Scattered{}), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(); err != nil {
		t.Fatal(err)
	}
	if mp.Strategy.Name() != "scattered" {
		t.Fatalf("strategy = %s, want scattered", mp.Strategy.Name())
	}
	res, err := SimulateCtx(ctx, mp)
	if err != nil || res.Makespan <= 0 {
		t.Fatalf("simulate: err=%v makespan=%v", err, res.Makespan)
	}

	// The cached path and an uncached cold plan agree bit-identically.
	old, err := Plan(ctx, g, m, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Plan(ctx, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if old.Schedule.Time != nw.Schedule.Time {
		t.Fatalf("uncached %v != cached %v", old.Schedule.Time, nw.Schedule.Time)
	}

	// Core-count and group-count options shape the schedule.
	dp, err := Plan(ctx, g, m, WithCores(8), WithForceGroups(1), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if dp.Schedule.P != 8 || dp.Schedule.MaxGroups() != 1 {
		t.Fatalf("options ignored: P=%d groups=%d", dp.Schedule.P, dp.Schedule.MaxGroups())
	}
}

// TestPlanSentinelsTopLevel checks the re-exported errors.Is contract.
func TestPlanSentinelsTopLevel(t *testing.T) {
	g := buildDemoGraph()
	m := CHiC().Subset(2)
	ctx := context.Background()

	if _, err := Plan(ctx, g, &Machine{Name: "bad"}); !errors.Is(err, ErrInvalidMachine) {
		t.Fatalf("got %v, want ErrInvalidMachine", err)
	}

	cyc := NewGraph("cyclic")
	a := cyc.AddBasic("a", 1)
	b := cyc.AddBasic("b", 1)
	cyc.MustEdge(a, b, 0)
	cyc.MustEdge(b, a, 0)
	if _, err := Plan(ctx, cyc, m); !errors.Is(err, ErrCyclicGraph) {
		t.Fatalf("got %v, want ErrCyclicGraph", err)
	}

	if _, err := Plan(ctx, g, m, WithCores(-3)); !errors.Is(err, ErrNoCores) {
		t.Fatalf("got %v, want ErrNoCores", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Plan(canceled, g, m, WithoutCache()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	mp, err := Plan(ctx, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateCtx(canceled, mp); !errors.Is(err, ErrCanceled) {
		t.Fatalf("SimulateCtx: got %v, want ErrCanceled", err)
	}
}

func TestExecuteThroughFacade(t *testing.T) {
	g := buildDemoGraph()
	m := CHiC().Subset(2)
	model := &CostModel{Machine: m}
	sched, err := (&Scheduler{Model: model}).Schedule(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	ran := make(chan string, 16)
	err = Execute(w, sched, func(task *Task) TaskFunc {
		return func(ctx *TaskCtx) error {
			if ctx.Group.Rank() == 0 {
				ran <- task.Name
			}
			ctx.Group.Barrier()
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(ran)
	count := 0
	for range ran {
		count++
	}
	if count != 6 {
		t.Fatalf("ran %d tasks, want 6", count)
	}
}

func TestCompileSpecFacade(t *testing.T) {
	u, err := CompileSpec(`
task work(x:vector:inout) work 1000 comm 800;
cmmain M(x:vector:inout:replic) {
  work(x);
  work(x);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Graph.Len() != 4 { // 2 tasks + start/stop
		t.Fatalf("compiled graph has %d tasks", u.Graph.Len())
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 9 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	for _, want := range []string{"table1", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing", want)
		}
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Run the cheapest one end to end.
	tables, err := RunExperiment("fig14")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig14 returned %d tables", len(tables))
	}
	if out := tables[0].Format(); !strings.Contains(out, "consecutive") {
		t.Fatalf("unexpected table output:\n%s", out)
	}
}

func TestMachinePresets(t *testing.T) {
	for _, m := range []*Machine{CHiC(), SGIAltix(), JuRoPA()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestFacadeDynamicAndRedist(t *testing.T) {
	w, _ := NewWorld(4)
	ran := 0
	err := RunDynamic(w, func(ctx *DynCtx) error {
		return ctx.SplitRun([]float64{1, 1}, []DynTask{
			func(c *DynCtx) error {
				if c.Comm.Rank() == 0 && c.Comm.WorldRank() == 0 {
					ran++
				}
				return nil
			},
			func(c *DynCtx) error { return nil },
		})
	})
	if err != nil || ran != 1 {
		t.Fatalf("dynamic run: err=%v ran=%d", err, ran)
	}

	m := CHiC().Subset(2)
	all := m.AllCores()
	plan, err := PlanRedistribution(
		RedistLayout{Kind: 0, Cores: all[:4], N: 32},
		RedistLayout{Kind: 0, Cores: all[4:], N: 32},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	g := buildDemoGraph()
	mp, err := Plan(context.Background(), g, m)
	if err != nil {
		t.Fatal(err)
	}
	gantt, err := RenderGantt(mp, 40)
	if err != nil || len(gantt) < 20 {
		t.Fatalf("gantt: err=%v len=%d", err, len(gantt))
	}
}
