package mtask

// End-to-end integration test of the full pipeline the paper describes:
// a CM-task specification program is compiled into a hierarchical M-task
// graph, the loop body is scheduled hierarchically with the layer-based
// algorithm, mapped with each strategy, simulated on the cluster model,
// and finally executed for real on the goroutine runtime with real
// numerical work, verifying both the result and the communication
// structure.

import (
	"math"
	"sync"
	"testing"

	"mtask/internal/cluster"
	"mtask/internal/core"
	"mtask/internal/cost"
	"mtask/internal/graph"
	"mtask/internal/runtime"
)

const pipelineSpec = `
const R = 4;

task prepare(v:vector:out) work 1000000 out 80000;
task refine(i:int:in, v:vector:in, w:vector:out) work 8000000 comm 80000 out 80000;
task merge(W:Rvectors:in, v:vector:inout) work 2000000;

cmmain PIPE(v:vector:inout:replic) {
  var W : Rvectors;
  var i : int;
  seq {
    prepare(v);
    parfor (i = 1:R) {
      refine(i, v, W[i]);
    }
    merge(W, v);
  }
}
`

func TestFullPipelineSpecToExecution(t *testing.T) {
	// 1. Compile the specification.
	unit, err := CompileSpec(pipelineSpec)
	if err != nil {
		t.Fatal(err)
	}
	g := unit.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// prepare + 4 refine + merge + start/stop.
	if g.Len() != 8 {
		t.Fatalf("compiled graph has %d nodes, want 8", g.Len())
	}

	// 2. Schedule with the layer-based algorithm on 8 CHiC nodes.
	machine := CHiC().Subset(8)
	model := &cost.Model{Machine: machine}
	sched, err := (&core.Scheduler{Model: model}).Schedule(g, machine.TotalCores())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sched.Layers) != 3 {
		t.Fatalf("schedule has %d layers, want 3 (prepare | refine x4 | merge)", len(sched.Layers))
	}
	if sched.Layers[1].NumGroups() < 2 {
		t.Fatalf("refine layer not task parallel: %d groups", sched.Layers[1].NumGroups())
	}

	// 3. Map with every strategy and simulate; consecutive must not lose
	// to scattered for this group-communication workload.
	times := map[string]float64{}
	for _, strat := range []core.Strategy{core.Consecutive{}, core.Scattered{}, core.Mixed{D: 2}} {
		mp, err := core.Map(sched, machine, strat)
		if err != nil {
			t.Fatal(err)
		}
		if err := mp.Validate(); err != nil {
			t.Fatal(err)
		}
		prog, _, err := cluster.FromMapping(model, mp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Simulate(model, prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan <= 0 {
			t.Fatal("zero makespan")
		}
		times[strat.Name()] = res.Makespan
		// The Gantt chart renders.
		if out := cluster.RenderGantt(prog, res, 48); len(out) < 10 {
			t.Fatal("empty gantt")
		}
	}
	if times["consecutive"] > times["scattered"] {
		t.Fatalf("consecutive %g worse than scattered %g", times["consecutive"], times["scattered"])
	}

	// 4. Execute the schedule on the goroutine runtime with real work:
	// prepare fills a vector, refine computes a weighted transform per
	// instance, merge averages. Verify against a sequential oracle.
	const n = 4096
	vecs := map[string][]float64{}
	var vecsMu sync.Mutex
	store := func(key string, v []float64) {
		vecsMu.Lock()
		vecs[key] = v
		vecsMu.Unlock()
	}
	load := func(key string) []float64 {
		vecsMu.Lock()
		defer vecsMu.Unlock()
		return vecs[key]
	}
	bodies := func(task *graph.Task) runtime.TaskFunc {
		return func(ctx *runtime.TaskCtx) error {
			lo, hi := runtime.BlockRange(n, ctx.Group.Size(), ctx.Group.Rank())
			switch {
			case task.Name == "prepare(v)":
				blk := make([]float64, hi-lo)
				for i := range blk {
					blk[i] = float64(lo + i)
				}
				full := ctx.Group.Allgather(blk)
				if ctx.Group.Rank() == 0 {
					store("v", full)
				}
				ctx.Group.Barrier()
				return nil
			case len(task.Name) > 6 && task.Name[:7] == "refine(":
				// refine(i,v,W[i]): w = i * v (blockwise).
				idx := float64(task.Name[7] - '0')
				src := load("v")
				blk := make([]float64, hi-lo)
				for i := range blk {
					blk[i] = idx * src[lo+i]
				}
				full := ctx.Group.Allgather(blk)
				if ctx.Group.Rank() == 0 {
					store(task.Name, full)
				}
				ctx.Group.Barrier()
				return nil
			default: // merge
				blk := make([]float64, hi-lo)
				for r := 1; r <= 4; r++ {
					w := load(refineName(r))
					for i := range blk {
						blk[i] += w[lo+i] / 4
					}
				}
				full := ctx.Group.Allgather(blk)
				if ctx.Group.Rank() == 0 {
					store("result", full)
				}
				ctx.Group.Barrier()
				return nil
			}
		}
	}
	w, err := NewWorld(sched.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := Execute(w, sched, bodies); err != nil {
		t.Fatal(err)
	}
	// Oracle: result[i] = mean over r of r*i = 2.5*i.
	for i := 0; i < n; i += 997 {
		want := 2.5 * float64(i)
		if math.Abs(vecs["result"][i]-want) > 1e-9 {
			t.Fatalf("result[%d] = %g, want %g", i, vecs["result"][i], want)
		}
	}
	// The runtime counted group collectives (one allgather per task).
	if got := w.Stats.Count(runtime.Group, runtime.OpAllgather); got < 4 {
		t.Fatalf("only %d group allgathers recorded", got)
	}
}

func refineName(i int) string {
	return "refine(" + string(rune('0'+i)) + ",v,W[" + string(rune('0'+i)) + "])"
}
